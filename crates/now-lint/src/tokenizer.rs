//! A hand-rolled, lossy-but-honest Rust tokenizer.
//!
//! The lint rules only need to know, for every identifier in a source
//! file, (a) that it really is code — not the inside of a string
//! literal, a comment, or a raw string — and (b) what line it sits on.
//! That is a much smaller contract than full parsing, so the lexer is
//! ~200 lines with no dependencies (this environment has no registry
//! access, hence no `syn`), but it must be *exact* about the boundaries
//! that could hide a violation or fake one:
//!
//! * line (`//`) and nested block (`/* /* */ */`) comments — kept as
//!   tokens because rule S001 inspects comment text for `SAFETY:`;
//! * string, byte-string, raw-string (`r#"…"#`, any `#` depth), char
//!   and byte-char literals — all skipped as single opaque tokens;
//! * the `'a` lifetime vs `'a'` char-literal ambiguity;
//! * raw identifiers (`r#match`) vs raw strings (`r#"…"`).
//!
//! Everything else degrades to identifier / number / single-character
//! punctuation tokens, which is all the rule engine consumes.

/// What a token is. Identifiers carry their name and comments their
/// full text (S001 greps it for `SAFETY:`); literals are opaque.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `spawn`, …).
    Ident,
    /// One character of punctuation.
    Punct(char),
    /// Line or block comment, text preserved verbatim.
    Comment,
    /// String / byte-string / raw-string literal (content discarded).
    Str,
    /// Char or byte-char literal.
    CharLit,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Numeric literal (suffixes and hex digits folded in).
    Num,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Name for `Ident`, full text for `Comment`, empty otherwise.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// Set by the scoping pass when the token lies inside a
    /// `#[cfg(test)]` / `#[test]` item; rules treat such code as test
    /// code. Always `false` straight out of the lexer.
    pub in_test: bool,
}

impl Token {
    fn new(kind: TokKind, text: String, line: u32) -> Self {
        Token {
            kind,
            text,
            line,
            in_test: false,
        }
    }

    /// True for identifier tokens named exactly `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True for the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Advances one char, counting newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn is_ident_start(c: char) -> bool {
        c.is_alphabetic() || c == '_'
    }

    fn is_ident_continue(c: char) -> bool {
        c.is_alphanumeric() || c == '_'
    }

    /// Consumes a `//…` comment (newline not included).
    fn line_comment(&mut self) -> Token {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        Token::new(TokKind::Comment, text, line)
    }

    /// Consumes a `/* … */` comment; Rust block comments nest.
    fn block_comment(&mut self) -> Token {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        Token::new(TokKind::Comment, text, line)
    }

    /// Consumes a `"…"` string body starting *after* the opening quote.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // escaped char, even if it is a quote
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw-string body: `pos` is at the first `#` or the
    /// opening quote. Returns `false` if this is not a raw string after
    /// all (it is a raw identifier like `r#match`).
    fn raw_string_body(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some('"') {
            return false; // r#ident
        }
        for _ in 0..=hashes {
            self.bump(); // the #s and the opening quote
        }
        // Scan for `"` followed by `hashes` #s.
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(matched) == Some('#') {
                    matched += 1;
                }
                if matched == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        }
        true
    }

    /// Consumes a char literal body after the opening `'` (the caller
    /// has already decided it is not a lifetime).
    fn char_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    /// `'` disambiguation: `'\…'` and `'x'` are char literals, anything
    /// else (`'a`, `'static`) is a lifetime.
    fn char_or_lifetime(&mut self) -> Token {
        let line = self.line;
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => {
                self.char_body();
                Token::new(TokKind::CharLit, String::new(), line)
            }
            Some(c) if Self::is_ident_start(c) && self.peek(1) != Some('\'') => {
                // A lifetime: consume the identifier chars.
                while let Some(c) = self.peek(0) {
                    if !Self::is_ident_continue(c) {
                        break;
                    }
                    self.bump();
                }
                Token::new(TokKind::Lifetime, String::new(), line)
            }
            Some(_) => {
                self.char_body();
                Token::new(TokKind::CharLit, String::new(), line)
            }
            None => Token::new(TokKind::Punct('\''), String::new(), line),
        }
    }

    fn ident(&mut self) -> String {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if !Self::is_ident_continue(c) {
                break;
            }
            name.push(c);
            self.bump();
        }
        name
    }
}

/// Tokenizes `src`. Never fails: unrecognized bytes become punctuation,
/// and unterminated literals simply run to end of file — good enough
/// for a linter that only runs on code rustc already accepts.
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = lx.peek(0) {
        let line = lx.line;
        match c {
            c if c.is_whitespace() => {
                lx.bump();
            }
            '/' if lx.peek(1) == Some('/') => out.push(lx.line_comment()),
            '/' if lx.peek(1) == Some('*') => out.push(lx.block_comment()),
            '"' => {
                lx.bump();
                lx.string_body();
                out.push(Token::new(TokKind::Str, String::new(), line));
            }
            '\'' => out.push(lx.char_or_lifetime()),
            c if c.is_ascii_digit() => {
                // Numbers: digits, hex/suffix letters, underscores.
                // `1.5` lexes as Num '.' Num, which the rules ignore.
                while let Some(c) = lx.peek(0) {
                    if !Lexer::is_ident_continue(c) {
                        break;
                    }
                    lx.bump();
                }
                out.push(Token::new(TokKind::Num, String::new(), line));
            }
            c if Lexer::is_ident_start(c) => {
                // Literal prefixes first: r"…", r#"…"#, b"…", br#"…"#,
                // b'…'; `r#ident` falls through to a raw identifier.
                if (c == 'r' || c == 'b')
                    && !lx.peek(1).is_some_and(|n| {
                        Lexer::is_ident_continue(n) || n == '#' || n == '"' || n == '\''
                    })
                {
                    let name = lx.ident();
                    out.push(Token::new(TokKind::Ident, name, line));
                    continue;
                }
                match c {
                    'r' if lx.peek(1) == Some('"') || lx.peek(1) == Some('#') => {
                        lx.bump(); // r
                        if lx.raw_string_body() {
                            out.push(Token::new(TokKind::Str, String::new(), line));
                        } else {
                            // r#ident: skip the # and lex the name.
                            lx.bump();
                            let name = lx.ident();
                            out.push(Token::new(TokKind::Ident, name, line));
                        }
                    }
                    'b' if lx.peek(1) == Some('"') => {
                        lx.bump(); // b
                        lx.bump(); // "
                        lx.string_body();
                        out.push(Token::new(TokKind::Str, String::new(), line));
                    }
                    'b' if lx.peek(1) == Some('\'') => {
                        lx.bump(); // b
                        lx.bump(); // '
                        lx.char_body();
                        out.push(Token::new(TokKind::CharLit, String::new(), line));
                    }
                    'b' if lx.peek(1) == Some('r')
                        && (lx.peek(2) == Some('"') || lx.peek(2) == Some('#')) =>
                    {
                        lx.bump(); // b
                        lx.bump(); // r
                        if lx.raw_string_body() {
                            out.push(Token::new(TokKind::Str, String::new(), line));
                        } else {
                            // `br#ident` is not legal Rust; treat as ident.
                            lx.bump();
                            let name = lx.ident();
                            out.push(Token::new(TokKind::Ident, name, line));
                        }
                    }
                    _ => {
                        let name = lx.ident();
                        out.push(Token::new(TokKind::Ident, name, line));
                    }
                }
            }
            other => {
                lx.bump();
                out.push(Token::new(TokKind::Punct(other), String::new(), line));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_survive_and_literals_vanish() {
        let src = r##"fn main() { let x = "HashMap inside a string"; }"##;
        assert_eq!(idents(src), ["fn", "main", "let", "x"]);
    }

    #[test]
    fn line_and_block_comments_are_tokens_not_code() {
        let src = "// HashMap here\n/* and /* nested */ HashSet there */\nlet y = 1;";
        let toks = tokenize(src);
        let comments: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Comment).collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[1].text.contains("nested"));
        assert_eq!(idents(src), ["let", "y"]);
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let src = r####"let s = r#"thread::spawn " still a string"#; let t = r"x";"####;
        assert_eq!(idents(src), ["let", "s", "let", "t"]);
    }

    #[test]
    fn raw_identifiers_are_identifiers() {
        assert_eq!(idents("let r#match = 3;"), ["let", "match"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = tokenize(src);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::CharLit).count(),
            1
        );
        // '\'' escape form:
        let toks = tokenize(r"let q = '\''; let nl = '\n';");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::CharLit).count(),
            2
        );
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = r##"let a = b"unsafe"; let b = b'u'; let c = br#"spawn"#;"##;
        assert_eq!(idents(src), ["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nlet b = 1; /* c\nc */ let d = 2;";
        let toks = tokenize(src);
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 3);
        assert_eq!(find("d"), 4);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = r#"let s = "he said \"unsafe\""; let done = 1;"#;
        assert_eq!(idents(src), ["let", "s", "let", "done"]);
    }
}
