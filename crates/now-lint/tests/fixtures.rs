//! The fixture corpus: each file under `fixtures/` pins one slice of
//! tokenizer / scoping / rule behavior — positive and negative cases
//! per rule plus the comment / string / raw-string / nested-test-module
//! traps a naive grep gets wrong. The corpus is excluded from the real
//! workspace run via `lint.toml` (it contains deliberate violations);
//! these tests are what keep it honest.

use now_lint::{lint_source, FileClass};

/// Lints a fixture under the given class; returns `(rule, line)` pairs
/// in source order.
fn lint_fixture(name: &str, class: FileClass) -> Vec<(String, u32)> {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} must exist: {e}"));
    lint_source(name, class, &src)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

fn pairs(expect: &[(&str, u32)]) -> Vec<(String, u32)> {
    expect.iter().map(|(r, l)| (r.to_string(), *l)).collect()
}

#[test]
fn d001_flags_every_hash_collection_site() {
    assert_eq!(
        lint_fixture("d001_hash_collections.rs", FileClass::Prod),
        pairs(&[("D001", 5), ("D001", 6), ("D001", 9), ("D001", 13)])
    );
}

#[test]
fn d001_exempts_test_gated_items() {
    assert_eq!(
        lint_fixture("d001_test_scoped.rs", FileClass::Prod),
        pairs(&[])
    );
}

#[test]
fn d001_binds_in_bins_but_not_test_targets() {
    // The same violating file is clean when it *is* a test target…
    assert_eq!(
        lint_fixture("d001_hash_collections.rs", FileClass::TestOnly),
        pairs(&[])
    );
    // …but x_* experiment binaries emit byte-diffed JSON: rules bind.
    assert_eq!(
        lint_fixture("d001_hash_collections.rs", FileClass::Bin).len(),
        4
    );
}

#[test]
fn d002_flags_wall_clock_reads() {
    assert_eq!(
        lint_fixture("d002_wall_clock.rs", FileClass::Prod),
        pairs(&[("D002", 8), ("D002", 9)])
    );
    // Benches and experiment binaries measure wall time by design.
    assert_eq!(
        lint_fixture("d002_wall_clock.rs", FileClass::Bench),
        pairs(&[])
    );
    assert_eq!(
        lint_fixture("d002_wall_clock.rs", FileClass::Bin),
        pairs(&[])
    );
}

#[test]
fn d002_stopwatch_wrapper_is_clean_but_raw_reads_still_flag() {
    // The sanctioned `now_trace::stopwatch` call carries no wall-clock
    // token, so only the raw `Instant::now` beside it is reported —
    // the wrapper cannot be used to smuggle raw reads past the rule.
    assert_eq!(
        lint_fixture("d002_stopwatch_wrapper.rs", FileClass::Prod),
        pairs(&[("D002", 12)])
    );
}

#[test]
fn d003_flags_spawns_outside_the_pool() {
    assert_eq!(
        lint_fixture("d003_thread_spawn.rs", FileClass::Prod),
        pairs(&[("D003", 6), ("D003", 8)])
    );
}

#[test]
fn d004_flags_ambient_entropy_even_in_tests() {
    let expected = pairs(&[("D004", 6), ("D004", 7), ("D004", 13), ("D004", 14)]);
    assert_eq!(
        lint_fixture("d004_ambient_entropy.rs", FileClass::Prod),
        expected
    );
    // Unreplayable tests are still unreplayable: no test exemption.
    assert_eq!(
        lint_fixture("d004_ambient_entropy.rs", FileClass::TestOnly),
        expected
    );
}

#[test]
fn s001_flags_only_the_undocumented_unsafe() {
    assert_eq!(
        lint_fixture("s001_unsafe.rs", FileClass::Prod),
        pairs(&[("S001", 5)])
    );
}

#[test]
fn a001_binds_in_non_lib_targets_only() {
    let expected = pairs(&[("A001", 6), ("A001", 7), ("A001", 8)]);
    assert_eq!(
        lint_fixture("a001_deprecated_api.rs", FileClass::TestOnly),
        expected
    );
    assert_eq!(
        lint_fixture("a001_deprecated_api.rs", FileClass::Bench),
        expected
    );
    // Lib code holds the #[deprecated] definitions; #![deny(deprecated)]
    // polices it there, so A001 stays quiet.
    assert_eq!(
        lint_fixture("a001_deprecated_api.rs", FileClass::Prod),
        pairs(&[])
    );
}

#[test]
fn string_and_comment_traps_stay_silent() {
    for class in [FileClass::Prod, FileClass::TestOnly, FileClass::Bin] {
        assert_eq!(
            lint_fixture("traps_strings_comments.rs", class),
            pairs(&[]),
            "trap file must be clean under {class:?}"
        );
    }
}

#[test]
fn nested_test_modules_scope_exactly() {
    assert_eq!(
        lint_fixture("traps_nested_test_mod.rs", FileClass::Prod),
        pairs(&[("D001", 4), ("D001", 21)])
    );
}

#[test]
fn cfg_not_test_is_not_an_exemption() {
    assert_eq!(
        lint_fixture("traps_cfg_not_test.rs", FileClass::Prod),
        pairs(&[("D001", 5), ("D001", 9)])
    );
}
