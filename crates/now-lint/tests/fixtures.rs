//! The fixture corpus: each file under `fixtures/` pins one slice of
//! tokenizer / scoping / rule behavior — positive and negative cases
//! per rule plus the comment / string / raw-string / nested-test-module
//! traps a naive grep gets wrong. The corpus is excluded from the real
//! workspace run via `lint.toml` (it contains deliberate violations);
//! these tests are what keep it honest.

use now_lint::semantic::{analyze_unit, UnitFile};
use now_lint::{lint_source, FileClass};

/// Lints a fixture under the given class; returns `(rule, line)` pairs
/// in source order.
fn lint_fixture(name: &str, class: FileClass) -> Vec<(String, u32)> {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} must exist: {e}"));
    lint_source(name, class, &src)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

fn pairs(expect: &[(&str, u32)]) -> Vec<(String, u32)> {
    expect.iter().map(|(r, l)| (r.to_string(), *l)).collect()
}

/// Parses a fixture into a single-file analysis unit and runs the
/// semantic pass (P001 / L002 / D005); returns `(rule, line)` pairs
/// sorted by `(line, rule)` — the workspace run sorts findings the
/// same way, so emission order is not part of the contract.
fn semantic_fixture(name: &str, class: FileClass) -> Vec<(String, u32)> {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} must exist: {e}"));
    let unit = UnitFile::parse(name, class, &src);
    let mut out: Vec<(String, u32)> = analyze_unit(std::slice::from_ref(&unit))
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect();
    out.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
    out
}

#[test]
fn d001_flags_every_hash_collection_site() {
    assert_eq!(
        lint_fixture("d001_hash_collections.rs", FileClass::Prod),
        pairs(&[("D001", 5), ("D001", 6), ("D001", 9), ("D001", 13)])
    );
}

#[test]
fn d001_exempts_test_gated_items() {
    assert_eq!(
        lint_fixture("d001_test_scoped.rs", FileClass::Prod),
        pairs(&[])
    );
}

#[test]
fn d001_binds_in_bins_but_not_test_targets() {
    // The same violating file is clean when it *is* a test target…
    assert_eq!(
        lint_fixture("d001_hash_collections.rs", FileClass::TestOnly),
        pairs(&[])
    );
    // …but x_* experiment binaries emit byte-diffed JSON: rules bind.
    assert_eq!(
        lint_fixture("d001_hash_collections.rs", FileClass::Bin).len(),
        4
    );
}

#[test]
fn d002_flags_wall_clock_reads() {
    assert_eq!(
        lint_fixture("d002_wall_clock.rs", FileClass::Prod),
        pairs(&[("D002", 8), ("D002", 9)])
    );
    // Benches and experiment binaries measure wall time by design.
    assert_eq!(
        lint_fixture("d002_wall_clock.rs", FileClass::Bench),
        pairs(&[])
    );
    assert_eq!(
        lint_fixture("d002_wall_clock.rs", FileClass::Bin),
        pairs(&[])
    );
}

#[test]
fn d002_stopwatch_wrapper_is_clean_but_raw_reads_still_flag() {
    // The sanctioned `now_trace::stopwatch` call carries no wall-clock
    // token, so only the raw `Instant::now` beside it is reported —
    // the wrapper cannot be used to smuggle raw reads past the rule.
    assert_eq!(
        lint_fixture("d002_stopwatch_wrapper.rs", FileClass::Prod),
        pairs(&[("D002", 12)])
    );
}

#[test]
fn d003_flags_spawns_outside_the_pool() {
    assert_eq!(
        lint_fixture("d003_thread_spawn.rs", FileClass::Prod),
        pairs(&[("D003", 6), ("D003", 8)])
    );
}

#[test]
fn d004_flags_ambient_entropy_even_in_tests() {
    let expected = pairs(&[("D004", 6), ("D004", 7), ("D004", 13), ("D004", 14)]);
    assert_eq!(
        lint_fixture("d004_ambient_entropy.rs", FileClass::Prod),
        expected
    );
    // Unreplayable tests are still unreplayable: no test exemption.
    assert_eq!(
        lint_fixture("d004_ambient_entropy.rs", FileClass::TestOnly),
        expected
    );
}

#[test]
fn s001_flags_only_the_undocumented_unsafe() {
    assert_eq!(
        lint_fixture("s001_unsafe.rs", FileClass::Prod),
        pairs(&[("S001", 5)])
    );
}

#[test]
fn a001_binds_in_non_lib_targets_only() {
    let expected = pairs(&[("A001", 6), ("A001", 7), ("A001", 8)]);
    assert_eq!(
        lint_fixture("a001_deprecated_api.rs", FileClass::TestOnly),
        expected
    );
    assert_eq!(
        lint_fixture("a001_deprecated_api.rs", FileClass::Bench),
        expected
    );
    // Lib code holds the #[deprecated] definitions; #![deny(deprecated)]
    // polices it there, so A001 stays quiet.
    assert_eq!(
        lint_fixture("a001_deprecated_api.rs", FileClass::Prod),
        pairs(&[])
    );
}

#[test]
fn string_and_comment_traps_stay_silent() {
    for class in [FileClass::Prod, FileClass::TestOnly, FileClass::Bin] {
        assert_eq!(
            lint_fixture("traps_strings_comments.rs", class),
            pairs(&[]),
            "trap file must be clean under {class:?}"
        );
    }
}

#[test]
fn nested_test_modules_scope_exactly() {
    assert_eq!(
        lint_fixture("traps_nested_test_mod.rs", FileClass::Prod),
        pairs(&[("D001", 4), ("D001", 21)])
    );
}

#[test]
fn cfg_not_test_is_not_an_exemption() {
    assert_eq!(
        lint_fixture("traps_cfg_not_test.rs", FileClass::Prod),
        pairs(&[("D001", 5), ("D001", 9)])
    );
}

// -------------------------------------------------------------------
// Semantic-pass fixtures (P001 / L002 / D005).
// -------------------------------------------------------------------

#[test]
fn p001_flags_unjustified_panic_sites_only() {
    assert_eq!(
        semantic_fixture("p001_panic_paths.rs", FileClass::Prod),
        pairs(&[
            ("P001", 5),  // .unwrap() without INVARIANT
            ("P001", 6),  // .expect() without INVARIANT
            ("P001", 7),  // v[0]: literal index
            ("P001", 8),  // v[1 + 2]: arithmetic index
            ("P001", 9),  // v[1..2]: partial range
            ("P001", 10), // panic!
        ])
    );
}

#[test]
fn p001_is_silent_in_test_targets() {
    assert_eq!(
        semantic_fixture("p001_panic_paths.rs", FileClass::TestOnly),
        pairs(&[])
    );
}

#[test]
fn l002_flags_rogue_and_nested_locks_but_not_tests() {
    assert_eq!(
        semantic_fixture("l002_lock_sites.rs", FileClass::Prod),
        pairs(&[
            ("L002", 7),  // rogue(): lock outside the sanctioned sites
            ("L002", 16), // double(): WaveShards in the wrong file
            ("L002", 17), // double(): second guard in one fn
        ])
    );
}

#[test]
fn d005_flags_ambient_and_tainted_draws_only() {
    assert_eq!(
        semantic_fixture("d005_rng_streams.rs", FileClass::Prod),
        pairs(&[
            ("D005", 8),  // ambient_draw(): no derivation anywhere
            ("D005", 26), // tainted_kernel(): only caller is unsanctioned
        ])
    );
}

#[test]
fn d005_is_silent_in_test_targets() {
    assert_eq!(
        semantic_fixture("d005_rng_streams.rs", FileClass::TestOnly),
        pairs(&[])
    );
}

// -------------------------------------------------------------------
// Item-parser traps: nested impls, trait methods, shadowed names,
// cross-module calls, cfg(test)-scoped items.
// -------------------------------------------------------------------

#[test]
fn items_traps_parse_into_the_expected_tree() {
    use now_lint::items::{Item, ItemKind, Vis};

    let path = format!("{}/fixtures/items_traps.rs", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("fixture must exist");
    let unit = UnitFile::parse("items_traps.rs", FileClass::Prod, &src);

    fn sig(item: &Item) -> (ItemKind, &str, Vis, bool) {
        (item.kind, item.name.as_str(), item.vis, item.in_test)
    }

    let top: Vec<_> = unit.items.iter().map(sig).collect();
    assert_eq!(
        top,
        vec![
            (ItemKind::Mod, "outer", Vis::Pub, false),
            (ItemKind::Fn, "caller", Vis::Pub, false),
            (ItemKind::Mod, "tests", Vis::Private, true),
        ]
    );

    let outer = &unit.items[0];
    let inner_sigs: Vec<_> = outer.children.iter().map(sig).collect();
    assert_eq!(
        inner_sigs,
        vec![
            (ItemKind::Struct, "Gadget", Vis::Pub, false),
            (ItemKind::Impl, "Gadget", Vis::Private, false),
            (ItemKind::Trait, "Widget", Vis::Pub, false),
            (ItemKind::Impl, "Gadget", Vis::Private, false),
            (ItemKind::Mod, "inner", Vis::Pub, false),
            (ItemKind::Fn, "shadowed", Vis::Pub, false),
        ]
    );

    // Nested inherent impl keeps its methods as children.
    let inherent = &outer.children[1];
    assert_eq!(inherent.trait_name, None);
    assert_eq!(
        inherent.children.iter().map(sig).collect::<Vec<_>>(),
        vec![
            (ItemKind::Fn, "build", Vis::Pub, false),
            (ItemKind::Fn, "helper", Vis::Private, false),
        ]
    );

    // Trait block: required and provided methods both parse.
    let trait_item = &outer.children[2];
    assert_eq!(
        trait_item.children.iter().map(sig).collect::<Vec<_>>(),
        vec![
            (ItemKind::Fn, "require", Vis::Private, false),
            (ItemKind::Fn, "provide", Vis::Private, false),
        ]
    );

    // Trait impl records the trait's name.
    assert_eq!(outer.children[3].trait_name.as_deref(), Some("Widget"));

    // cfg(test)-scoped items carry the in_test mark down.
    let tests_mod = &unit.items[2];
    assert!(tests_mod.children.iter().all(|c| c.in_test));
}

#[test]
fn items_traps_call_graph_resolves_shadowed_names_to_both() {
    use now_lint::items::build_graph;

    let path = format!("{}/fixtures/items_traps.rs", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("fixture must exist");
    let unit = UnitFile::parse("items_traps.rs", FileClass::Prod, &src);
    let graph = build_graph(&[(
        unit.path.clone(),
        unit.tokens.as_slice(),
        unit.items.as_slice(),
    )]);

    let idx = |name: &str, line: u32| {
        graph
            .fns
            .iter()
            .position(|f| f.name == name && f.line == line)
            .unwrap_or_else(|| panic!("fn {name}@{line} must be in the graph"))
    };
    // Both `shadowed` definitions are distinct nodes…
    let inner_shadowed = idx("shadowed", 26);
    let outer_shadowed = idx("shadowed", 31);
    let caller = idx("caller", 36);
    // …and name-level resolution gives `caller` an edge to each
    // (documented over-approximation: identifiers, not paths).
    assert!(graph.edges[caller].contains(&inner_shadowed));
    assert!(graph.edges[caller].contains(&outer_shadowed));
    // `provide` resolves its `self.require()` to both require defs
    // (trait decl + impl), and nothing calls `build`.
    assert!(graph.callers_of(idx("build", 8)).is_empty());
    let require_impl = idx("require", 22);
    let provide = idx("provide", 16);
    assert!(graph.edges[provide].contains(&require_impl));
}

#[test]
fn items_traps_public_surface_hides_test_scoped_items() {
    use now_lint::api_lock::render_surface;

    let path = format!("{}/fixtures/items_traps.rs", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("fixture must exist");
    let unit = UnitFile::parse("crates/x/src/lib.rs", FileClass::Prod, &src);
    let surface = render_surface(std::slice::from_ref(&unit));
    let lines: Vec<&str> = surface
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .collect();
    assert_eq!(
        lines,
        vec![
            "fn caller",
            "fn outer::Gadget::build",
            "fn outer::Widget::provide",
            "fn outer::Widget::require",
            "fn outer::inner::shadowed",
            "fn outer::shadowed",
            "impl Widget for outer::Gadget",
            "mod outer",
            "mod outer::inner",
            "struct outer::Gadget",
            "trait outer::Widget",
        ],
        "surface must list public items only, sorted, with no cfg(test) leakage"
    );
}
