//! Round-trips generated item trees through the parser: a random tree
//! of mods / traits / impls / leaf items is rendered to source text,
//! parsed with the real tokenizer + item parser, and the recovered
//! `(kind, name, vis, trait_name, children)` shape must equal the
//! generated one. Token spans must also nest properly.

use now_lint::items::{Item, ItemKind, Vis};
use now_lint::semantic::UnitFile;
use now_lint::FileClass;
use proptest::prelude::*;
use proptest::TestRng;

#[derive(Debug, Clone, Copy, PartialEq)]
enum LeafKind {
    Fn,
    Struct,
    Enum,
    Const,
    Type,
}

#[derive(Debug, Clone)]
struct FnSpec {
    name: String,
    vis: Vis,
    /// Trait context only: `fn f(&self) {}` when true, `fn f(&self);`
    /// (required method, no body) when false.
    provided: bool,
}

#[derive(Debug, Clone)]
enum Spec {
    Leaf {
        kind: LeafKind,
        name: String,
        vis: Vis,
    },
    Mod {
        name: String,
        vis: Vis,
        children: Vec<Spec>,
    },
    Trait {
        name: String,
        vis: Vis,
        methods: Vec<FnSpec>,
    },
    Impl {
        type_name: String,
        methods: Vec<FnSpec>,
    },
}

// -------------------------------------------------------------------
// Rendering: spec → unambiguous source text.
// -------------------------------------------------------------------

fn vis_str(vis: Vis) -> &'static str {
    match vis {
        Vis::Pub => "pub ",
        Vis::PubScoped => "pub(crate) ",
        Vis::Private => "",
    }
}

fn render(specs: &[Spec], out: &mut String) {
    for spec in specs {
        match spec {
            Spec::Leaf { kind, name, vis } => {
                out.push_str(vis_str(*vis));
                match kind {
                    LeafKind::Fn => out.push_str(&format!("fn {name}() -> u32 {{ 1 + 2 }}\n")),
                    LeafKind::Struct => out.push_str(&format!("struct {name};\n")),
                    LeafKind::Enum => out.push_str(&format!("enum {name} {{ V }}\n")),
                    LeafKind::Const => out.push_str(&format!("const {name}: u32 = 3;\n")),
                    LeafKind::Type => out.push_str(&format!("type {name} = u8;\n")),
                }
            }
            Spec::Mod {
                name,
                vis,
                children,
            } => {
                out.push_str(vis_str(*vis));
                out.push_str(&format!("mod {name} {{\n"));
                render(children, out);
                out.push_str("}\n");
            }
            Spec::Trait { name, vis, methods } => {
                out.push_str(vis_str(*vis));
                out.push_str(&format!("trait {name} {{\n"));
                for m in methods {
                    if m.provided {
                        out.push_str(&format!("fn {}(&self) {{}}\n", m.name));
                    } else {
                        out.push_str(&format!("fn {}(&self);\n", m.name));
                    }
                }
                out.push_str("}\n");
            }
            Spec::Impl { type_name, methods } => {
                out.push_str(&format!("impl {type_name} {{\n"));
                for m in methods {
                    out.push_str(vis_str(m.vis));
                    out.push_str(&format!("fn {}(&self) {{}}\n", m.name));
                }
                out.push_str("}\n");
            }
        }
    }
}

// -------------------------------------------------------------------
// Shape: the structural projection both sides are compared through.
// -------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct Shape {
    kind: ItemKind,
    name: String,
    vis: Vis,
    trait_name: Option<String>,
    children: Vec<Shape>,
}

fn fn_shape(name: &str, vis: Vis) -> Shape {
    Shape {
        kind: ItemKind::Fn,
        name: name.to_string(),
        vis,
        trait_name: None,
        children: Vec::new(),
    }
}

fn spec_shape(spec: &Spec) -> Shape {
    match spec {
        Spec::Leaf { kind, name, vis } => Shape {
            kind: match kind {
                LeafKind::Fn => ItemKind::Fn,
                LeafKind::Struct => ItemKind::Struct,
                LeafKind::Enum => ItemKind::Enum,
                LeafKind::Const => ItemKind::Const,
                LeafKind::Type => ItemKind::TypeAlias,
            },
            name: name.clone(),
            vis: *vis,
            trait_name: None,
            children: Vec::new(),
        },
        Spec::Mod {
            name,
            vis,
            children,
        } => Shape {
            kind: ItemKind::Mod,
            name: name.clone(),
            vis: *vis,
            trait_name: None,
            children: children.iter().map(spec_shape).collect(),
        },
        Spec::Trait { name, vis, methods } => Shape {
            kind: ItemKind::Trait,
            name: name.clone(),
            vis: *vis,
            trait_name: None,
            // Trait methods carry no visibility qualifier of their own.
            children: methods
                .iter()
                .map(|m| fn_shape(&m.name, Vis::Private))
                .collect(),
        },
        Spec::Impl { type_name, methods } => Shape {
            kind: ItemKind::Impl,
            name: type_name.clone(),
            vis: Vis::Private,
            trait_name: None,
            children: methods.iter().map(|m| fn_shape(&m.name, m.vis)).collect(),
        },
    }
}

fn item_shape(item: &Item) -> Shape {
    Shape {
        kind: item.kind,
        name: item.name.clone(),
        vis: item.vis,
        trait_name: item.trait_name.clone(),
        children: item.children.iter().map(item_shape).collect(),
    }
}

/// Every item's span must be non-empty and every child span nested
/// strictly inside its parent's.
fn spans_nest(items: &[Item], lo: usize, hi: usize) -> bool {
    items.iter().all(|item| {
        item.tok_start < item.tok_end
            && lo <= item.tok_start
            && item.tok_end <= hi
            && spans_nest(&item.children, item.tok_start, item.tok_end)
    })
}

// -------------------------------------------------------------------
// Strategy: the vendored proptest shim has no combinators, so the
// tree generator implements `Strategy` directly over `TestRng`.
// -------------------------------------------------------------------

/// `x`-prefixed lowercase identifier: never a Rust keyword.
fn gen_name(rng: &mut TestRng) -> String {
    const LETTERS: &[u8] = b"abcdefgh";
    let len = 1 + rng.below(4) as usize;
    let mut name = String::from("x");
    for _ in 0..len {
        name.push(LETTERS[rng.below(LETTERS.len() as u64) as usize] as char);
    }
    name
}

fn gen_vis(rng: &mut TestRng) -> Vis {
    match rng.below(3) {
        0 => Vis::Pub,
        1 => Vis::PubScoped,
        _ => Vis::Private,
    }
}

fn gen_fn_spec(rng: &mut TestRng) -> FnSpec {
    FnSpec {
        name: gen_name(rng),
        vis: gen_vis(rng),
        provided: rng.below(2) == 0,
    }
}

fn gen_fn_specs(rng: &mut TestRng) -> Vec<FnSpec> {
    (0..rng.below(4)).map(|_| gen_fn_spec(rng)).collect()
}

fn gen_spec(rng: &mut TestRng, depth: u32) -> Spec {
    // Past depth 3, only leaves: bounds the tree.
    let choices = if depth >= 3 { 5 } else { 8 };
    match rng.below(choices) {
        0 => Spec::Leaf {
            kind: LeafKind::Fn,
            name: gen_name(rng),
            vis: gen_vis(rng),
        },
        1 => Spec::Leaf {
            kind: LeafKind::Struct,
            name: gen_name(rng),
            vis: gen_vis(rng),
        },
        2 => Spec::Leaf {
            kind: LeafKind::Enum,
            name: gen_name(rng),
            vis: gen_vis(rng),
        },
        3 => Spec::Leaf {
            kind: LeafKind::Const,
            name: gen_name(rng),
            vis: gen_vis(rng),
        },
        4 => Spec::Leaf {
            kind: LeafKind::Type,
            name: gen_name(rng),
            vis: gen_vis(rng),
        },
        5 => {
            let name = gen_name(rng);
            let vis = gen_vis(rng);
            let children = (0..rng.below(4))
                .map(|_| gen_spec(rng, depth + 1))
                .collect();
            Spec::Mod {
                name,
                vis,
                children,
            }
        }
        6 => Spec::Trait {
            name: gen_name(rng),
            vis: gen_vis(rng),
            methods: gen_fn_specs(rng),
        },
        _ => Spec::Impl {
            type_name: gen_name(rng),
            methods: gen_fn_specs(rng),
        },
    }
}

/// Yields a whole top-level item list per case.
struct SpecTree;

impl Strategy for SpecTree {
    type Value = Vec<Spec>;
    fn generate(&self, rng: &mut TestRng) -> Vec<Spec> {
        (0..rng.below(6)).map(|_| gen_spec(rng, 0)).collect()
    }
}

proptest! {
    #[test]
    fn generated_item_trees_round_trip(specs in SpecTree) {
        let mut src = String::new();
        render(&specs, &mut src);
        let unit = UnitFile::parse("crates/x/src/lib.rs", FileClass::Prod, &src);
        let got: Vec<Shape> = unit.items.iter().map(item_shape).collect();
        let want: Vec<Shape> = specs.iter().map(spec_shape).collect();
        prop_assert_eq!(got, want, "parsed tree must mirror the generated tree\n--- source ---\n{}", src);
        prop_assert!(
            spans_nest(&unit.items, 0, unit.tokens.len()),
            "item token spans must nest within their parents"
        );
    }
}
