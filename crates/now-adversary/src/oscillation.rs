//! Oscillation attack: adversarially timed churn bursts.
//!
//! The paper's adversary "can induce churn … by join-leave attacks or by
//! forcing honest nodes to leave". This strategy stresses the
//! *structural* maintenance rather than one cluster's composition: it
//! alternates bursts of joins and bursts of forced leaves sized to
//! whipsaw clusters across the split/merge thresholds, maximizing the
//! number of split/merge operations (each of which reshapes the overlay
//! and re-randomizes memberships — the adversary pays nothing and makes
//! the system churn internally).

use crate::budget::CorruptionBudget;
use crate::strategies::{Action, Adversary};
use now_core::NowSystem;
use now_net::DetRng;
use rand::Rng;

/// Alternating join/leave bursts sized relative to the cluster-size
/// band, aiming to maximize split/merge churn.
#[derive(Debug, Clone, Copy)]
pub struct Oscillation {
    /// Corruption budget for arrivals.
    pub budget: CorruptionBudget,
    burst_remaining: u64,
    joining: bool,
}

impl Oscillation {
    /// An oscillation attack with corruption fraction `tau`.
    pub fn new(tau: f64) -> Self {
        Oscillation {
            budget: CorruptionBudget::new(tau),
            burst_remaining: 0,
            joining: true,
        }
    }

    fn burst_len(sys: &NowSystem) -> u64 {
        // Slightly more than the band width per cluster, times the
        // cluster count: enough to push many clusters across a
        // threshold within one burst.
        let band = (sys.params().max_cluster_size() - sys.params().min_cluster_size()) as u64;
        (band / 2 + 1) * sys.cluster_count() as u64
    }
}

impl Adversary for Oscillation {
    fn decide(&mut self, sys: &NowSystem, rng: &mut DetRng) -> Action {
        if self.burst_remaining == 0 {
            self.joining = !self.joining;
            self.burst_remaining = Self::burst_len(sys);
        }
        self.burst_remaining -= 1;
        if self.joining {
            Action::Join {
                honest: !self.budget.can_corrupt_arrival(sys),
                contact: None,
            }
        } else {
            let nodes = sys.node_ids();
            Action::Leave {
                // INVARIANT: adversaries only act on populated systems
                // (population floor holds ids in the registry).
                node: nodes[rng.gen_range(0..nodes.len())],
            }
        }
    }

    fn name(&self) -> &'static str {
        "oscillation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_core::NowParams;

    #[test]
    fn oscillation_alternates_bursts() {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let sys = NowSystem::init_fast(params, 150, 0.1, 1);
        let mut adv = Oscillation::new(0.1);
        let mut rng = DetRng::new(2);
        let mut kinds = Vec::new();
        for _ in 0..200 {
            let k = match adv.decide(&sys, &mut rng) {
                Action::Join { .. } => 'j',
                Action::Leave { .. } => 'l',
                Action::Idle => 'i',
            };
            kinds.push(k);
        }
        assert!(kinds.contains(&'j'));
        assert!(kinds.contains(&'l'));
        // Bursts are contiguous: count of direction flips is small
        // relative to the step count.
        let flips = kinds.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(flips < 20, "bursts should be long, saw {flips} flips");
    }

    #[test]
    fn oscillation_provokes_splits_and_merges() {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let mut sys = NowSystem::init_fast(params, 200, 0.1, 3);
        let mut adv = Oscillation::new(0.1);
        let mut rng = DetRng::new(4);
        for _ in 0..400 {
            match adv.decide(&sys, &mut rng) {
                Action::Join { honest, .. } => {
                    sys.join(honest);
                }
                Action::Leave { node } => {
                    let _ = sys.leave(node);
                }
                Action::Idle => {}
            }
        }
        let (_, _, splits, merges) = sys.op_counts();
        assert!(
            splits + merges > 4,
            "oscillation should provoke structural churn: {splits} splits, {merges} merges"
        );
        sys.check_consistency().unwrap();
        assert!(sys.audit().size_bounds_ok, "band must survive the whipsaw");
    }
}
