//! The adversary's corruption budget.

use now_core::NowSystem;

/// Enforces the model's corruption bound: the adversary controls at most
/// a `τ` fraction of the *current* population, and may only corrupt
/// nodes at start or on arrival (never adaptively).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionBudget {
    tau: f64,
}

impl CorruptionBudget {
    /// A budget of fraction `tau`.
    ///
    /// # Panics
    /// Panics if `tau ∉ [0, 1)`.
    pub fn new(tau: f64) -> Self {
        assert!((0.0..1.0).contains(&tau), "tau must lie in [0,1)");
        CorruptionBudget { tau }
    }

    /// The fraction bound.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Whether corrupting one more arrival keeps the adversary within
    /// budget (evaluated against the population *after* the arrival).
    pub fn can_corrupt_arrival(&self, sys: &NowSystem) -> bool {
        self.can_corrupt_at(sys.population(), sys.byz_population())
    }

    /// The projected-counts variant of [`CorruptionBudget::can_corrupt_arrival`]:
    /// whether one more corrupt arrival fits given `population` /
    /// `byz_population` as they will stand when the arrival lands.
    /// Batch drivers decide a whole batch before the system moves, so
    /// they must project the counts forward per slot instead of
    /// re-reading a stale system (otherwise a width-`w` batch could
    /// overshoot the τ budget by up to `w − 1` corrupt arrivals).
    pub fn can_corrupt_at(&self, population: u64, byz_population: u64) -> bool {
        let pop_after = population as f64 + 1.0;
        let byz_after = byz_population as f64 + 1.0;
        byz_after / pop_after <= self.tau
    }

    /// Current slack: how many more corrupt arrivals fit (approximate,
    /// assuming all upcoming arrivals are corrupt).
    pub fn slack(&self, sys: &NowSystem) -> u64 {
        let pop = sys.population() as f64;
        let byz = sys.byz_population() as f64;
        // Largest j with (byz + j) / (pop + j) ≤ tau.
        if self.tau >= 1.0 || byz / pop >= self.tau {
            return 0;
        }
        let j = (self.tau * pop - byz) / (1.0 - self.tau);
        j.max(0.0).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_core::NowParams;

    fn system(n0: usize, tau: f64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, tau, 1)
    }

    #[test]
    fn budget_allows_up_to_tau() {
        let sys = system(100, 0.1); // 10 byz of 100
        let budget = CorruptionBudget::new(0.3);
        assert!(budget.can_corrupt_arrival(&sys));
        let slack = budget.slack(&sys);
        // (10 + j)/(100 + j) ≤ 0.3 → j ≤ 20/0.7 ≈ 28.
        assert_eq!(slack, 28);
    }

    #[test]
    fn budget_blocks_at_tau() {
        let sys = system(100, 0.3);
        let budget = CorruptionBudget::new(0.3);
        assert!(!budget.can_corrupt_arrival(&sys), "(31)/(101) > 0.3");
        assert_eq!(budget.slack(&sys), 0);
    }

    #[test]
    fn zero_budget_never_corrupts() {
        let sys = system(50, 0.0);
        let budget = CorruptionBudget::new(0.0);
        assert!(!budget.can_corrupt_arrival(&sys));
        assert_eq!(budget.slack(&sys), 0);
    }

    #[test]
    #[should_panic(expected = "tau must lie in")]
    fn invalid_tau_rejected() {
        let _ = CorruptionBudget::new(1.0);
    }
}
