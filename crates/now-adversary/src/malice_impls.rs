//! Strategic in-protocol behavior for compromised clusters.

use now_core::{Malice, RandNumContext, RandNumPurpose};
use now_net::{ClusterId, DetRng, NodeId};
use rand::Rng;

/// The adversary's in-protocol policy once it holds ≥ 1/3 of some
/// cluster: steer walks toward the target cluster, accept walk endpoints
/// only at the target, surrender honest members first in exchanges
/// (hoarding Byzantine ones), and extremize every other `randNum`.
///
/// Handed to [`now_core::NowSystem::set_malice`] by attack experiments.
#[derive(Debug, Clone, Copy)]
pub struct TargetedMalice {
    /// The cluster the adversary is trying to pollute.
    pub target: ClusterId,
}

impl TargetedMalice {
    /// Policy aimed at `target`.
    pub fn new(target: ClusterId) -> Self {
        TargetedMalice { target }
    }
}

impl Malice for TargetedMalice {
    fn rand_num(&mut self, range: u64, ctx: RandNumContext, rng: &mut DetRng) -> u64 {
        match ctx.purpose {
            // Small draws accept the endpoint; the adversary accepts
            // walks that end at its target and rejects them anywhere
            // else (forcing a restart that keeps the walk alive and
            // steerable toward the target).
            RandNumPurpose::WalkAcceptance => {
                if ctx.cluster == self.target {
                    0
                } else {
                    range.saturating_sub(1)
                }
            }
            // At the target, a minimal draw maps to a *long* exponential
            // holding time: the walk expires right there (and the
            // acceptance above then admits it). Anywhere else, a maximal
            // draw makes the holding time ≈ 0: the walk rushes through,
            // handing the adversary one more routed hop toward the
            // target.
            RandNumPurpose::WalkHoldingTime => {
                if ctx.cluster == self.target {
                    0
                } else {
                    range.saturating_sub(1)
                }
            }
            // The hop itself is overridden in `walk_hop`; the index is
            // irrelevant.
            RandNumPurpose::WalkNeighborChoice => 0,
            // Member indices are refined by `exchange_victim`; split
            // seeds and generic draws get an extremal fixed choice.
            RandNumPurpose::MemberIndex | RandNumPurpose::SplitSeed | RandNumPurpose::Generic => {
                // Deterministic but not constant: mixing in one RNG draw
                // keeps repeated split seeds from being identical, which
                // would make "random" partitions degenerate.
                if range <= 1 {
                    0
                } else {
                    rng.gen_range(0..range)
                }
            }
        }
    }

    fn walk_hop(&mut self, neighbors: &[ClusterId], rng: &mut DetRng) -> Option<ClusterId> {
        if neighbors.contains(&self.target) {
            // Route the walk into the target so that exchanges keep
            // hitting it.
            Some(self.target)
        } else if neighbors.is_empty() {
            None
        } else {
            // No direct route: pick any neighbor (walk stays legal).
            // INVARIANT: the empty case returned None above; the draw
            // range is exactly the neighbor count.
            Some(neighbors[rng.gen_range(0..neighbors.len())])
        }
    }

    fn exchange_victim(&mut self, members: &[(NodeId, bool)], _rng: &mut DetRng) -> Option<NodeId> {
        // Give away an honest member; keep Byzantine ones concentrated.
        members
            .iter()
            .find(|(_, honest)| *honest)
            .or_else(|| members.first())
            .map(|(id, _)| *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(cluster: u64, purpose: RandNumPurpose) -> RandNumContext {
        RandNumContext {
            cluster: ClusterId::from_raw(cluster),
            purpose,
        }
    }

    #[test]
    fn acceptance_is_target_selective() {
        let mut m = TargetedMalice::new(ClusterId::from_raw(7));
        let mut rng = DetRng::new(1);
        // At the target: accept (minimal draw).
        assert_eq!(
            m.rand_num(1 << 24, ctx(7, RandNumPurpose::WalkAcceptance), &mut rng),
            0
        );
        // Elsewhere: reject (maximal draw).
        assert_eq!(
            m.rand_num(1 << 24, ctx(3, RandNumPurpose::WalkAcceptance), &mut rng),
            (1 << 24) - 1
        );
    }

    #[test]
    fn holding_time_stalls_at_target_rushes_elsewhere() {
        let mut m = TargetedMalice::new(ClusterId::from_raw(0));
        let mut rng = DetRng::new(2);
        // Elsewhere: maximal draw → holding time ≈ 0 (rush through).
        assert_eq!(
            m.rand_num(100, ctx(5, RandNumPurpose::WalkHoldingTime), &mut rng),
            99
        );
        // At the target: minimal draw → long holding time (stall).
        assert_eq!(
            m.rand_num(100, ctx(0, RandNumPurpose::WalkHoldingTime), &mut rng),
            0
        );
    }

    #[test]
    fn generic_draws_stay_in_range() {
        let mut m = TargetedMalice::new(ClusterId::from_raw(0));
        let mut rng = DetRng::new(3);
        for _ in 0..50 {
            let v = m.rand_num(10, ctx(1, RandNumPurpose::Generic), &mut rng);
            assert!(v < 10);
            let s = m.rand_num(10, ctx(1, RandNumPurpose::SplitSeed), &mut rng);
            assert!(s < 10);
        }
        assert_eq!(m.rand_num(0, ctx(1, RandNumPurpose::Generic), &mut rng), 0);
    }

    #[test]
    fn walk_prefers_target() {
        let target = ClusterId::from_raw(7);
        let mut m = TargetedMalice::new(target);
        let mut rng = DetRng::new(4);
        let neighbors = vec![ClusterId::from_raw(1), target, ClusterId::from_raw(3)];
        assert_eq!(m.walk_hop(&neighbors, &mut rng), Some(target));
        let others = vec![ClusterId::from_raw(1), ClusterId::from_raw(3)];
        let hop = m.walk_hop(&others, &mut rng).unwrap();
        assert!(others.contains(&hop));
        assert_eq!(m.walk_hop(&[], &mut rng), None);
    }

    #[test]
    fn exchange_surrenders_honest_first() {
        let mut m = TargetedMalice::new(ClusterId::from_raw(0));
        let mut rng = DetRng::new(5);
        let members = vec![
            (NodeId::from_raw(0), false),
            (NodeId::from_raw(1), true),
            (NodeId::from_raw(2), false),
        ];
        assert_eq!(
            m.exchange_victim(&members, &mut rng),
            Some(NodeId::from_raw(1))
        );
        let all_byz = vec![(NodeId::from_raw(5), false)];
        assert_eq!(
            m.exchange_victim(&all_byz, &mut rng),
            Some(NodeId::from_raw(5))
        );
        assert_eq!(m.exchange_victim(&[], &mut rng), None);
    }
}
