//! Batched churn drivers: the attack styles of [`crate::strategies`]
//! and [`crate::pressure`], emitting one *batch* of operations per time
//! step.
//!
//! `Scenario::run_batched` historically covered only environmental
//! churn (Quiet/Balanced/Sawtooth); the attack styles lacked batch
//! counterparts (ROADMAP: "Batched adversarial drivers"). This module
//! closes the gap: the [`BatchDriver`] trait lives here — next to the
//! serial [`crate::Adversary`] it generalizes — and the three attack
//! drivers emit whole batches that the conflict-free wave scheduler
//! ([`now_core::NowSystem::step_parallel_specs`]) executes as single
//! time steps:
//!
//! * [`BatchJoinLeave`] — the §3.3 cluster-capture strategy at batch
//!   rate: withdraw Byzantine nodes parked outside the target and
//!   re-join them (corrupt, budget permitting) steered at the target.
//! * [`BatchForcedLeave`] — the DoS attack at batch rate: evict a
//!   batch of the target's honest members, replacing them with
//!   arrivals so the population (and the model floor) hold.
//! * [`BatchSplitForcing`] — structural pressure at batch rate: flood
//!   the target with steered arrivals so it splits every few steps.
//!
//! All three resolve their target through a [`ClusterPick`] policy
//! (largest cluster by default — the natural flood target) and
//! re-resolve whenever the current target merges away. Corruption
//! decisions project the population forward across the batch (the
//! pattern established by `BatchRandomChurn`), so a wide batch cannot
//! overshoot τ by deciding every slot against the stale pre-batch
//! ratio.

use crate::budget::CorruptionBudget;
use now_core::{JoinSpec, NowSystem};
use now_net::{ClusterId, DetRng, NodeId};

/// A churn schedule that emits one *batch* of operations per time step:
/// join specs (corruption decision plus optional steered contact) and
/// departing nodes. The batched analogue of [`crate::Adversary`].
///
/// Implementations must be deterministic functions of `(sys, rng)` —
/// the batched runners rely on it for their bit-reproducibility
/// guarantees.
pub trait BatchDriver {
    /// Decides this step's batch: the arrivals (with corruption flags
    /// and contact steering) and the departing nodes.
    fn decide_batch(&mut self, sys: &NowSystem, rng: &mut DetRng) -> (Vec<JoinSpec>, Vec<NodeId>);

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// The batched analogue of [`crate::Quiet`]: every step is an empty
/// batch (time passes, nothing churns) — control and quiesce phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuietBatches;

impl BatchDriver for QuietBatches {
    fn decide_batch(
        &mut self,
        _sys: &NowSystem,
        _rng: &mut DetRng,
    ) -> (Vec<JoinSpec>, Vec<NodeId>) {
        (Vec::new(), Vec::new())
    }

    fn name(&self) -> &'static str {
        "quiet-batches"
    }
}

/// How a targeted batch driver (re)selects its victim cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterPick {
    /// The first live cluster in id order (the serial attacks' default).
    First,
    /// The largest live cluster (ties broken by id) — the natural
    /// flood target.
    Largest,
    /// The smallest live cluster (ties broken by id) — the natural
    /// drain target.
    Smallest,
}

impl ClusterPick {
    /// Resolves the policy against the current system state.
    /// Deterministic: ties break toward the smaller cluster id.
    pub fn resolve(self, sys: &NowSystem) -> ClusterId {
        let ids = sys.cluster_ids();
        match self {
            // INVARIANT: the registry never drops its last cluster
            // (LastCluster guard), so the id list is non-empty.
            ClusterPick::First => ids[0],
            ClusterPick::Largest => ids
                .iter()
                .copied()
                .max_by_key(|&c| {
                    (
                        sys.cluster(c).map(|cl| cl.size()).unwrap_or(0),
                        std::cmp::Reverse(c),
                    )
                })
                // INVARIANT: LastCluster guard — at least one id exists.
                .expect("a live system has clusters"),
            ClusterPick::Smallest => ids
                .iter()
                .copied()
                .min_by_key(|&c| (sys.cluster(c).map(|cl| cl.size()).unwrap_or(usize::MAX), c))
                // INVARIANT: LastCluster guard — at least one id exists.
                .expect("a live system has clusters"),
        }
    }
}

/// Keeps a sticky target alive: re-resolves `pick` whenever the current
/// target is gone (merged away).
fn live_target(target: &mut Option<ClusterId>, pick: ClusterPick, sys: &NowSystem) -> ClusterId {
    match *target {
        Some(c) if sys.cluster(c).is_some() => c,
        _ => {
            let c = pick.resolve(sys);
            *target = Some(c);
            c
        }
    }
}

/// The §3.3 join–leave attack at batch rate: each step withdraws up to
/// `width / 2` Byzantine nodes that sit *outside* the target cluster
/// and re-joins the same number of corrupt arrivals (budget permitting)
/// steered at the target. When no Byzantine node is parked outside the
/// target, the driver falls back to pure corrupt insertion up to the
/// projected budget — the serial strategy's "all inside already; try to
/// add one", batched.
#[derive(Debug, Clone, Copy)]
pub struct BatchJoinLeave {
    /// Operations per step (joins + leaves combined).
    pub width: usize,
    /// Corruption budget for the re-joining arrivals.
    pub budget: CorruptionBudget,
    /// Target (re)selection policy.
    pub pick: ClusterPick,
    target: Option<ClusterId>,
}

impl BatchJoinLeave {
    /// Attacks the [`ClusterPick::Largest`] cluster with batches of
    /// `width` operations at corruption fraction `tau`.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn new(width: usize, tau: f64) -> Self {
        assert!(width > 0, "batch width must be positive");
        BatchJoinLeave {
            width,
            budget: CorruptionBudget::new(tau),
            pick: ClusterPick::Largest,
            target: None,
        }
    }

    /// Overrides the target-selection policy.
    pub fn with_pick(mut self, pick: ClusterPick) -> Self {
        self.pick = pick;
        self.target = None;
        self
    }

    /// The current sticky target, if one has been resolved.
    pub fn target(&self) -> Option<ClusterId> {
        self.target
    }
}

impl BatchDriver for BatchJoinLeave {
    fn decide_batch(&mut self, sys: &NowSystem, _rng: &mut DetRng) -> (Vec<JoinSpec>, Vec<NodeId>) {
        let target = live_target(&mut self.target, self.pick, sys);
        let half = (self.width / 2).max(1);

        // Withdraw Byzantine nodes parked outside the target (members
        // already inside stay put), in deterministic id order.
        let leaves: Vec<NodeId> = sys
            .byz_node_ids()
            .into_iter()
            .filter(|&b| sys.node_cluster(b).map(|c| c != target).unwrap_or(false))
            .take(half)
            .collect();

        // Re-join the withdrawn mass as corrupt arrivals steered at the
        // target; project the withdrawals so the budget check sees the
        // post-leave ratio. Slots the budget refuses are dropped — the
        // §3.3 adversary only ever inserts its own nodes.
        let mut pop = sys.population().saturating_sub(leaves.len() as u64);
        let mut byz = sys.byz_population().saturating_sub(leaves.len() as u64);
        let slots = if leaves.is_empty() {
            half
        } else {
            leaves.len()
        };
        let mut joins = Vec::with_capacity(slots);
        for _ in 0..slots {
            if self.budget.can_corrupt_at(pop, byz) {
                joins.push(JoinSpec::via(target, false));
                pop += 1;
                byz += 1;
            }
        }
        (joins, leaves)
    }

    fn name(&self) -> &'static str {
        "batch-join-leave"
    }
}

/// The forced-leave (DoS) attack at batch rate: each step evicts up to
/// `width / 2` *honest* members of the target cluster and interleaves
/// the same number of uniform replacement arrivals (corrupted up to the
/// projected budget), so the population — and the model's floor — hold
/// while the target's Byzantine share is pressured upward.
#[derive(Debug, Clone, Copy)]
pub struct BatchForcedLeave {
    /// Operations per step (evictions + replacements combined).
    pub width: usize,
    /// Corruption budget for the replacement arrivals.
    pub budget: CorruptionBudget,
    /// Target (re)selection policy.
    pub pick: ClusterPick,
    target: Option<ClusterId>,
}

impl BatchForcedLeave {
    /// Attacks the [`ClusterPick::Largest`] cluster with batches of
    /// `width` operations at corruption fraction `tau`.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn new(width: usize, tau: f64) -> Self {
        assert!(width > 0, "batch width must be positive");
        BatchForcedLeave {
            width,
            budget: CorruptionBudget::new(tau),
            pick: ClusterPick::Largest,
            target: None,
        }
    }

    /// Overrides the target-selection policy.
    pub fn with_pick(mut self, pick: ClusterPick) -> Self {
        self.pick = pick;
        self.target = None;
        self
    }

    /// The current sticky target, if one has been resolved.
    pub fn target(&self) -> Option<ClusterId> {
        self.target
    }
}

impl BatchDriver for BatchForcedLeave {
    fn decide_batch(&mut self, sys: &NowSystem, _rng: &mut DetRng) -> (Vec<JoinSpec>, Vec<NodeId>) {
        let target = live_target(&mut self.target, self.pick, sys);
        let half = (self.width / 2).max(1);

        let leaves: Vec<NodeId> = sys
            .cluster(target)
            .map(|c| {
                c.members()
                    .filter(|&m| sys.is_honest(m).unwrap_or(false))
                    .take(half)
                    .collect()
            })
            .unwrap_or_default();

        // Replacements keep n stable; the evictions removed honest
        // nodes, so project the population down but not the Byzantine
        // count before the budget check.
        let mut pop = sys.population().saturating_sub(leaves.len() as u64);
        let mut byz = sys.byz_population();
        let joins = (0..leaves.len())
            .map(|_| {
                let corrupt = self.budget.can_corrupt_at(pop, byz);
                pop += 1;
                if corrupt {
                    byz += 1;
                }
                JoinSpec::uniform(!corrupt)
            })
            .collect();
        (joins, leaves)
    }

    fn name(&self) -> &'static str {
        "batch-forced-leave"
    }
}

/// Split-forcing pressure at batch rate: every step floods the target
/// with `width` arrivals steered at it (corrupted up to the projected
/// budget), so the target repeatedly oversizes and splits. Against the
/// full protocol `randCl` re-routes each arrival to a walk-chosen host
/// and the pressure diffuses; against the no-shuffle ablation the
/// target itself inflates.
#[derive(Debug, Clone, Copy)]
pub struct BatchSplitForcing {
    /// Arrivals per step.
    pub width: usize,
    /// Corruption budget for the flood's arrivals.
    pub budget: CorruptionBudget,
    /// Target (re)selection policy.
    pub pick: ClusterPick,
    target: Option<ClusterId>,
}

impl BatchSplitForcing {
    /// Floods the [`ClusterPick::Largest`] cluster with batches of
    /// `width` arrivals at corruption fraction `tau`.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn new(width: usize, tau: f64) -> Self {
        assert!(width > 0, "batch width must be positive");
        BatchSplitForcing {
            width,
            budget: CorruptionBudget::new(tau),
            pick: ClusterPick::Largest,
            target: None,
        }
    }

    /// Overrides the target-selection policy.
    pub fn with_pick(mut self, pick: ClusterPick) -> Self {
        self.pick = pick;
        self.target = None;
        self
    }

    /// The current sticky target, if one has been resolved.
    pub fn target(&self) -> Option<ClusterId> {
        self.target
    }
}

impl BatchDriver for BatchSplitForcing {
    fn decide_batch(&mut self, sys: &NowSystem, _rng: &mut DetRng) -> (Vec<JoinSpec>, Vec<NodeId>) {
        let target = live_target(&mut self.target, self.pick, sys);
        let mut pop = sys.population();
        let mut byz = sys.byz_population();
        let joins = (0..self.width)
            .map(|_| {
                let corrupt = self.budget.can_corrupt_at(pop, byz);
                pop += 1;
                if corrupt {
                    byz += 1;
                }
                JoinSpec::via(target, !corrupt)
            })
            .collect();
        (joins, Vec::new())
    }

    fn name(&self) -> &'static str {
        "batch-split-forcing"
    }
}

/// The merge-forcing drain at batch rate: each step evicts up to
/// `width / 2` members of the target cluster (honest first — the
/// adversary keeps its own nodes in play, exactly the serial
/// [`crate::MergeForcing`] preference) and interleaves the same number
/// of *uniform* replacement arrivals corrupted up to the projected
/// budget. The replacements keep the population and model floor
/// intact, but they land on walk-chosen hosts — so the target
/// net-shrinks below `k·logN/l` within a few steps and the merge
/// machinery dissolves a victim cluster into it: two clusters' worth of
/// structural churn per batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchMergeForcing {
    /// Operations per step (evictions + replacements combined).
    pub width: usize,
    /// Corruption budget for the replacement arrivals.
    pub budget: CorruptionBudget,
    /// Target (re)selection policy.
    pub pick: ClusterPick,
    target: Option<ClusterId>,
}

impl BatchMergeForcing {
    /// Drains the [`ClusterPick::Largest`] cluster with batches of
    /// `width` operations at corruption fraction `tau`.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn new(width: usize, tau: f64) -> Self {
        assert!(width > 0, "batch width must be positive");
        BatchMergeForcing {
            width,
            budget: CorruptionBudget::new(tau),
            pick: ClusterPick::Largest,
            target: None,
        }
    }

    /// Overrides the target-selection policy.
    pub fn with_pick(mut self, pick: ClusterPick) -> Self {
        self.pick = pick;
        self.target = None;
        self
    }

    /// The current sticky target, if one has been resolved.
    pub fn target(&self) -> Option<ClusterId> {
        self.target
    }
}

impl BatchDriver for BatchMergeForcing {
    fn decide_batch(&mut self, sys: &NowSystem, _rng: &mut DetRng) -> (Vec<JoinSpec>, Vec<NodeId>) {
        let target = live_target(&mut self.target, self.pick, sys);
        let half = (self.width / 2).max(1);

        // Drain honest members first, then (if the target runs out of
        // honest mass) the adversary's own — both in id order, so the
        // batch is a pure function of the system state.
        let (leaves, honest_leaves) = match sys.cluster(target) {
            Some(c) => {
                let mut honest: Vec<NodeId> = Vec::new();
                let mut byz: Vec<NodeId> = Vec::new();
                for m in c.members() {
                    if sys.is_honest(m).unwrap_or(false) {
                        honest.push(m);
                    } else {
                        byz.push(m);
                    }
                }
                let honest_taken = honest.len().min(half);
                honest.truncate(half);
                honest.extend(byz.into_iter().take(half - honest.len()));
                (honest, honest_taken)
            }
            None => (Vec::new(), 0),
        };

        // Uniform replacements hold n stable; project the departures
        // before the budget check (honest evictions lower only the
        // population, Byzantine ones lower both counts).
        let mut pop = sys.population().saturating_sub(leaves.len() as u64);
        let mut byz = sys
            .byz_population()
            .saturating_sub((leaves.len() - honest_leaves) as u64);
        let joins = (0..leaves.len())
            .map(|_| {
                let corrupt = self.budget.can_corrupt_at(pop, byz);
                pop += 1;
                if corrupt {
                    byz += 1;
                }
                JoinSpec::uniform(!corrupt)
            })
            .collect();
        (joins, leaves)
    }

    fn name(&self) -> &'static str {
        "batch-merge-forcing"
    }
}

/// Alternating join/leave bursts at batch rate: each *step* is one
/// whole burst — `width` arrivals on even steps, `width` departures of
/// distinct uniformly random nodes on odd steps. The batched analogue
/// of the serial [`crate::BurstChurn`] (whose burst of `width`
/// consecutive single-op steps collapses into one wave-scheduled time
/// step here — the regime the paper's parallel-batch footnote is for).
#[derive(Debug, Clone, Copy)]
pub struct BatchBurstChurn {
    /// Operations per burst (= per step).
    pub width: usize,
    /// Corruption budget for the join bursts.
    pub budget: CorruptionBudget,
    /// Steers the join bursts at a sticky [`ClusterPick`] target
    /// (`None` = uniform contacts, the serial driver's behavior).
    pub pick: Option<ClusterPick>,
    target: Option<ClusterId>,
    position: u64,
}

impl BatchBurstChurn {
    /// Uniform bursts of `width` operations at corruption fraction
    /// `tau`.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn new(width: usize, tau: f64) -> Self {
        assert!(width > 0, "batch width must be positive");
        BatchBurstChurn {
            width,
            budget: CorruptionBudget::new(tau),
            pick: None,
            target: None,
            position: 0,
        }
    }

    /// Steers the join bursts at a sticky target chosen by `pick`.
    pub fn with_pick(mut self, pick: ClusterPick) -> Self {
        self.pick = Some(pick);
        self.target = None;
        self
    }

    /// Whether the next batch is a join burst.
    pub fn is_joining(&self) -> bool {
        self.position % 2 == 0
    }

    /// The current sticky target, if steered and resolved.
    pub fn target(&self) -> Option<ClusterId> {
        self.target
    }
}

impl BatchDriver for BatchBurstChurn {
    fn decide_batch(&mut self, sys: &NowSystem, rng: &mut DetRng) -> (Vec<JoinSpec>, Vec<NodeId>) {
        let joining = self.is_joining();
        self.position += 1;
        if joining {
            let contact = self
                .pick
                .map(|pick| live_target(&mut self.target, pick, sys));
            let mut pop = sys.population();
            let mut byz = sys.byz_population();
            let joins = (0..self.width)
                .map(|_| {
                    let corrupt = self.budget.can_corrupt_at(pop, byz);
                    pop += 1;
                    if corrupt {
                        byz += 1;
                    }
                    match contact {
                        Some(c) => JoinSpec::via(c, !corrupt),
                        None => JoinSpec::uniform(!corrupt),
                    }
                })
                .collect();
            (joins, Vec::new())
        } else {
            let nodes = sys.node_ids();
            let want = self.width.min(nodes.len());
            let picks = now_graph::sample::sample_distinct(nodes.len(), want, rng);
            (Vec::new(), picks.into_iter().map(|i| nodes[i]).collect())
        }
    }

    fn name(&self) -> &'static str {
        "batch-burst-churn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_core::NowParams;

    fn system(n0: usize, tau: f64, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, tau, seed)
    }

    #[test]
    fn cluster_pick_policies_resolve_deterministically() {
        let mut sys = system(150, 0.1, 1);
        // Random churn makes sizes unequal.
        for i in 0..20 {
            sys.join(i % 7 == 0);
        }
        let largest = ClusterPick::Largest.resolve(&sys);
        let smallest = ClusterPick::Smallest.resolve(&sys);
        assert_eq!(ClusterPick::First.resolve(&sys), sys.cluster_ids()[0]);
        assert!(
            sys.cluster(largest).unwrap().size() >= sys.cluster(smallest).unwrap().size(),
            "largest must not be smaller than smallest"
        );
        assert_eq!(largest, ClusterPick::Largest.resolve(&sys), "deterministic");
        assert_eq!(smallest, ClusterPick::Smallest.resolve(&sys));
    }

    #[test]
    fn join_leave_batches_withdraw_and_reinsert_at_target() {
        let sys = system(200, 0.2, 2);
        let mut adv = BatchJoinLeave::new(6, 0.3);
        let mut rng = DetRng::new(2);
        let (joins, leaves) = adv.decide_batch(&sys, &mut rng);
        let target = adv.target().unwrap();
        assert!(!leaves.is_empty(), "byz nodes exist outside the target");
        for &n in &leaves {
            assert!(!sys.is_honest(n).unwrap(), "withdraws its own nodes");
            assert_ne!(sys.node_cluster(n).unwrap(), target);
        }
        assert_eq!(joins.len(), leaves.len(), "re-joins the withdrawn mass");
        for j in &joins {
            assert!(!j.honest, "§3.3 inserts corrupt nodes");
            assert_eq!(j.contact, Some(target), "steered at the target");
        }
    }

    #[test]
    fn join_leave_respects_projected_budget() {
        // At τ exactly at the system rate, withdrawing j byz nodes buys
        // exactly j corrupt re-insertions — never more.
        let sys = system(100, 0.10, 3);
        let mut adv = BatchJoinLeave::new(8, 0.10);
        let mut rng = DetRng::new(3);
        let (joins, leaves) = adv.decide_batch(&sys, &mut rng);
        assert!(!leaves.is_empty());
        assert!(joins.len() <= leaves.len(), "at most the withdrawn mass");
        let frac = (sys.byz_population() - leaves.len() as u64 + joins.len() as u64) as f64
            / sys.population() as f64;
        assert!(frac <= 0.10 + 1e-9, "batch overshot τ: {frac}");
    }

    #[test]
    fn forced_leave_batches_evict_honest_and_replace() {
        let sys = system(200, 0.2, 4);
        let mut adv = BatchForcedLeave::new(6, 0.2).with_pick(ClusterPick::First);
        let mut rng = DetRng::new(4);
        let (joins, leaves) = adv.decide_batch(&sys, &mut rng);
        let target = adv.target().unwrap();
        assert_eq!(leaves.len(), 3, "width/2 evictions");
        for &n in &leaves {
            assert!(sys.is_honest(n).unwrap(), "DoS hits honest nodes");
            assert_eq!(sys.node_cluster(n).unwrap(), target);
        }
        assert_eq!(joins.len(), leaves.len(), "population held stable");
        assert!(joins.iter().all(|j| j.contact.is_none()), "uniform rejoins");
    }

    #[test]
    fn split_forcing_batches_flood_the_target() {
        let sys = system(200, 0.1, 5);
        let mut adv = BatchSplitForcing::new(5, 0.1).with_pick(ClusterPick::Smallest);
        let mut rng = DetRng::new(5);
        let (joins, leaves) = adv.decide_batch(&sys, &mut rng);
        let target = adv.target().unwrap();
        assert!(leaves.is_empty());
        assert_eq!(joins.len(), 5);
        assert!(joins.iter().all(|j| j.contact == Some(target)));
        // Projected budget: at τ = 0.1 with the system already at 10%,
        // at most a rounding-slack arrival can be corrupt.
        let corrupt = joins.iter().filter(|j| !j.honest).count();
        assert!(corrupt <= 1, "flood overshot the projected budget");
    }

    #[test]
    fn dead_targets_are_reresolved() {
        let sys = system(150, 0.1, 6);
        for mut adv in [
            BatchSplitForcing::new(2, 0.1).with_pick(ClusterPick::First),
            BatchSplitForcing::new(2, 0.1).with_pick(ClusterPick::Largest),
        ] {
            let mut rng = DetRng::new(6);
            let _ = adv.decide_batch(&sys, &mut rng);
            assert!(sys.cluster(adv.target().unwrap()).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "batch width")]
    fn zero_width_rejected() {
        let _ = BatchJoinLeave::new(0, 0.1);
    }

    #[test]
    fn merge_forcing_batches_drain_honest_first_and_replace_uniform() {
        let sys = system(200, 0.2, 7);
        let mut adv = BatchMergeForcing::new(6, 0.2).with_pick(ClusterPick::First);
        let mut rng = DetRng::new(7);
        let (joins, leaves) = adv.decide_batch(&sys, &mut rng);
        let target = adv.target().unwrap();
        assert_eq!(target, sys.cluster_ids()[0]);
        assert_eq!(leaves.len(), 3, "width/2 evictions");
        for &n in &leaves {
            assert_eq!(sys.node_cluster(n).unwrap(), target, "drains the target");
            assert!(sys.is_honest(n).unwrap(), "honest drained first");
        }
        assert_eq!(joins.len(), leaves.len(), "population held stable");
        assert!(joins.iter().all(|j| j.contact.is_none()), "uniform rejoins");
        // Projected budget: evicting honest nodes cannot fund more
        // corruption than τ allows post-batch.
        let corrupt = joins.iter().filter(|j| !j.honest).count() as u64;
        let frac = (sys.byz_population() + corrupt) as f64 / sys.population() as f64;
        assert!(frac <= 0.2 + 0.02, "batch overshot τ: {frac}");
    }

    #[test]
    fn merge_forcing_batches_fall_back_to_byz_members() {
        // Drain wider than the target's honest mass: the tail of the
        // eviction list must be the adversary's own nodes, id-ordered.
        let sys = system(60, 0.3, 8);
        let target = sys.cluster_ids()[0];
        let honest_count = sys.cluster(target).unwrap().honest_count();
        let size = sys.cluster(target).unwrap().size();
        let mut adv = BatchMergeForcing::new(2 * size, 0.3).with_pick(ClusterPick::First);
        let mut rng = DetRng::new(8);
        let (_, leaves) = adv.decide_batch(&sys, &mut rng);
        assert_eq!(leaves.len(), size, "whole cluster drained");
        let honest_evicted = leaves
            .iter()
            .filter(|&&n| sys.is_honest(n).unwrap())
            .count();
        assert_eq!(honest_evicted, honest_count, "honest first, then byz");
    }

    #[test]
    fn burst_batches_alternate_whole_bursts() {
        let sys = system(200, 0.1, 9);
        let mut adv = BatchBurstChurn::new(5, 0.1);
        let mut rng = DetRng::new(9);
        for step in 0..6 {
            let (joins, leaves) = adv.decide_batch(&sys, &mut rng);
            if step % 2 == 0 {
                assert_eq!((joins.len(), leaves.len()), (5, 0), "join burst");
                assert!(joins.iter().all(|j| j.contact.is_none()), "uniform joins");
            } else {
                assert_eq!((joins.len(), leaves.len()), (0, 5), "leave burst");
                let mut distinct = leaves.clone();
                distinct.sort_unstable();
                distinct.dedup();
                assert_eq!(distinct.len(), 5, "distinct departures");
            }
        }
    }

    #[test]
    fn burst_batches_steer_when_picked() {
        let sys = system(200, 0.1, 10);
        let mut adv = BatchBurstChurn::new(4, 0.1).with_pick(ClusterPick::Largest);
        let mut rng = DetRng::new(10);
        let (joins, _) = adv.decide_batch(&sys, &mut rng);
        let target = adv.target().unwrap();
        assert_eq!(target, ClusterPick::Largest.resolve(&sys));
        assert!(joins.iter().all(|j| j.contact == Some(target)));
    }
}
