//! Adversary models for NOW.
//!
//! The paper's adversary is **static** (corruptions fixed at start, plus
//! a corrupt-or-not decision for every arrival) but has **full
//! information** (it knows every node's position at all times) and
//! drives churn: join–leave attacks and forced departures of honest
//! nodes (e.g. DoS). This crate packages those capabilities:
//!
//! * [`Adversary`] — per-time-step churn decisions ([`Action`]),
//!   consuming the full system state the model entitles it to.
//! * Strategies: [`RandomChurn`] (environmental churn at a corruption
//!   rate), [`JoinLeaveAttack`] (the §3.3 cluster-capture strategy),
//!   [`ForcedLeaveAttack`] (DoS on a target cluster's honest members),
//!   [`SplitForcing`]/[`MergeForcing`] (pressure on the split/merge
//!   machinery), [`BurstChurn`] (the high-rate regime of the parallel-
//!   batch footnote), [`Quiet`] (no churn).
//! * [`TargetedMalice`] — the in-protocol [`now_core::Malice`]
//!   implementation a strategic adversary uses once some cluster is
//!   compromised: steer walks toward the target, surrender honest
//!   members first, extremize `randNum`.
//! * Batched attack drivers ([`BatchDriver`]): [`BatchJoinLeave`],
//!   [`BatchForcedLeave`], [`BatchSplitForcing`], [`BatchMergeForcing`],
//!   [`BatchBurstChurn`] — the attack styles at batch rate, for the
//!   §2-footnote wave-scheduled execution.
//!
//! The corruption *budget* is enforced by [`CorruptionBudget`]: the
//! adversary may corrupt an arrival only while its share is below `τ`.

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

mod batch_drivers;
mod budget;
mod malice_impls;
mod oscillation;
mod pressure;
mod strategies;

pub use batch_drivers::{
    BatchBurstChurn, BatchDriver, BatchForcedLeave, BatchJoinLeave, BatchMergeForcing,
    BatchSplitForcing, ClusterPick, QuietBatches,
};
pub use budget::CorruptionBudget;
pub use malice_impls::TargetedMalice;
pub use oscillation::Oscillation;
pub use pressure::{BurstChurn, MergeForcing, SplitForcing};
pub use strategies::{Action, Adversary, ForcedLeaveAttack, JoinLeaveAttack, Quiet, RandomChurn};
