//! Churn strategies: what the adversary (or the environment) does at
//! each time step.

use crate::budget::CorruptionBudget;
use now_core::NowSystem;
use now_net::{ClusterId, DetRng, NodeId};
use rand::Rng;

/// One time step's worth of churn (the paper's model: one join or leave
/// per step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// A node joins; `honest` is the adversary's corruption decision,
    /// `contact` the cluster it approaches (`None` = uniform).
    Join {
        /// Whether the arrival is honest.
        honest: bool,
        /// Contact cluster, if the adversary steers it.
        contact: Option<ClusterId>,
    },
    /// The given node leaves (the adversary may force honest departures
    /// — a DoS — and may withdraw its own nodes at will).
    Leave {
        /// The departing node.
        node: NodeId,
    },
    /// No churn this step.
    Idle,
}

/// A churn driver. Both adversarial strategies and environmental churn
/// (growth phases, random turnover) implement this.
pub trait Adversary {
    /// Decides this time step's action from the full system state (the
    /// paper's adversary has full information).
    fn decide(&mut self, sys: &NowSystem, rng: &mut DetRng) -> Action;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// No churn at all (control runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Quiet;

impl Adversary for Quiet {
    fn decide(&mut self, _sys: &NowSystem, _rng: &mut DetRng) -> Action {
        Action::Idle
    }

    fn name(&self) -> &'static str {
        "quiet"
    }
}

/// Environmental churn: each step is a join with probability `p_join`,
/// else a leave of a uniformly random node. Arrivals are corrupted
/// whenever the budget allows (the adversary maximizes its presence).
#[derive(Debug, Clone, Copy)]
pub struct RandomChurn {
    /// Probability a step is a join.
    pub p_join: f64,
    /// Corruption budget for arrivals.
    pub budget: CorruptionBudget,
}

impl RandomChurn {
    /// Balanced churn (joins and leaves equally likely) at corruption
    /// fraction `tau`.
    pub fn balanced(tau: f64) -> Self {
        RandomChurn {
            p_join: 0.5,
            budget: CorruptionBudget::new(tau),
        }
    }
}

impl Adversary for RandomChurn {
    fn decide(&mut self, sys: &NowSystem, rng: &mut DetRng) -> Action {
        if rng.gen_bool(self.p_join.clamp(0.0, 1.0)) {
            Action::Join {
                honest: !self.budget.can_corrupt_arrival(sys),
                contact: None,
            }
        } else {
            let nodes = sys.node_ids();
            // INVARIANT: population floor keeps the id list non-empty;
            // the draw range is its exact length.
            let node = nodes[rng.gen_range(0..nodes.len())];
            Action::Leave { node }
        }
    }

    fn name(&self) -> &'static str {
        "random-churn"
    }
}

/// The §3.3 cluster-capture strategy: "the adversary chooses a specific
/// cluster and keeps adding and removing the Byzantine nodes until they
/// fall into that cluster."
///
/// Each step: withdraw a Byzantine node that is *not* in the target
/// cluster (members already inside stay put), then re-join it (corrupt,
/// budget permitting), contacting the target so the walk starts there.
/// Against NOW the exchange shuffling makes the capture probability
/// vanish; against the no-shuffle ablation the target cluster is
/// captured quickly (experiment X-JLA).
#[derive(Debug, Clone, Copy)]
pub struct JoinLeaveAttack {
    /// The cluster the adversary wants to capture.
    pub target: ClusterId,
    /// Corruption budget.
    pub budget: CorruptionBudget,
    leave_next: bool,
}

impl JoinLeaveAttack {
    /// Attacks `target` with corruption fraction `tau`.
    pub fn new(target: ClusterId, tau: f64) -> Self {
        JoinLeaveAttack {
            target,
            budget: CorruptionBudget::new(tau),
            leave_next: true,
        }
    }

    /// Retargets the attack (e.g. after the target cluster is merged
    /// away).
    pub fn retarget(&mut self, target: ClusterId) {
        self.target = target;
    }
}

impl Adversary for JoinLeaveAttack {
    fn decide(&mut self, sys: &NowSystem, rng: &mut DetRng) -> Action {
        // If the target vanished (merged), retarget to some live cluster.
        if sys.cluster(self.target).is_none() {
            let ids = sys.cluster_ids();
            // INVARIANT: LastCluster guard keeps `ids` non-empty; the
            // draw range is its exact length.
            self.target = ids[rng.gen_range(0..ids.len())];
        }
        if self.leave_next {
            // Withdraw a Byzantine node outside the target, if any.
            let candidate = sys.byz_node_ids().into_iter().find(|&b| {
                sys.node_cluster(b)
                    .map(|c| c != self.target)
                    .unwrap_or(false)
            });
            if let Some(node) = candidate {
                self.leave_next = false;
                return Action::Leave { node };
            }
            // All byzantine nodes already in the target (or none exist):
            // try to add one.
        }
        self.leave_next = true;
        if self.budget.can_corrupt_arrival(sys) {
            Action::Join {
                honest: false,
                contact: Some(self.target),
            }
        } else {
            Action::Idle
        }
    }

    fn name(&self) -> &'static str {
        "join-leave-attack"
    }
}

/// DoS attack: force *honest* members of the target cluster to leave,
/// concentrating the surviving Byzantine share. The paper's model allows
/// the adversary to induce such churn; NOW's leave-triggered exchanges
/// are the designed countermeasure.
#[derive(Debug, Clone, Copy)]
pub struct ForcedLeaveAttack {
    /// Cluster under attack.
    pub target: ClusterId,
    /// Corruption budget for replacement arrivals (interleaved joins
    /// keep the population steady).
    pub budget: CorruptionBudget,
    join_next: bool,
}

impl ForcedLeaveAttack {
    /// Attacks `target` with corruption fraction `tau`.
    pub fn new(target: ClusterId, tau: f64) -> Self {
        ForcedLeaveAttack {
            target,
            budget: CorruptionBudget::new(tau),
            join_next: false,
        }
    }
}

impl Adversary for ForcedLeaveAttack {
    fn decide(&mut self, sys: &NowSystem, rng: &mut DetRng) -> Action {
        if sys.cluster(self.target).is_none() {
            let ids = sys.cluster_ids();
            // INVARIANT: LastCluster guard keeps `ids` non-empty; the
            // draw range is its exact length.
            self.target = ids[rng.gen_range(0..ids.len())];
        }
        if self.join_next {
            self.join_next = false;
            return Action::Join {
                honest: !self.budget.can_corrupt_arrival(sys),
                contact: None,
            };
        }
        let victim = sys
            .cluster(self.target)
            .and_then(|c| c.members().find(|&m| sys.is_honest(m).unwrap_or(false)));
        match victim {
            Some(node) => {
                self.join_next = true; // replace next step to keep n stable
                Action::Leave { node }
            }
            None => Action::Idle,
        }
    }

    fn name(&self) -> &'static str {
        "forced-leave-attack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_core::NowParams;

    fn system(n0: usize, tau: f64, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, tau, seed)
    }

    #[test]
    fn quiet_never_acts() {
        let sys = system(100, 0.1, 1);
        let mut rng = DetRng::new(1);
        assert_eq!(Quiet.decide(&sys, &mut rng), Action::Idle);
        assert_eq!(Quiet.name(), "quiet");
    }

    #[test]
    fn random_churn_mixes_joins_and_leaves() {
        let sys = system(100, 0.1, 2);
        let mut adv = RandomChurn::balanced(0.2);
        let mut rng = DetRng::new(2);
        let mut joins = 0;
        let mut leaves = 0;
        for _ in 0..100 {
            match adv.decide(&sys, &mut rng) {
                Action::Join { .. } => joins += 1,
                Action::Leave { .. } => leaves += 1,
                Action::Idle => {}
            }
        }
        assert!(joins > 20 && leaves > 20, "joins {joins}, leaves {leaves}");
    }

    #[test]
    fn random_churn_respects_budget() {
        let sys = system(100, 0.3, 3); // already at 30%
        let mut adv = RandomChurn {
            p_join: 1.0,
            budget: CorruptionBudget::new(0.3),
        };
        let mut rng = DetRng::new(3);
        for _ in 0..10 {
            match adv.decide(&sys, &mut rng) {
                Action::Join { honest, .. } => assert!(honest, "budget exhausted"),
                other => panic!("expected join, got {other:?}"),
            }
        }
    }

    #[test]
    fn join_leave_attack_alternates_and_targets() {
        let sys = system(150, 0.2, 4);
        let target = sys.cluster_ids()[0];
        let mut adv = JoinLeaveAttack::new(target, 0.3);
        let mut rng = DetRng::new(4);
        // First action: withdraw a byzantine node from outside the target.
        match adv.decide(&sys, &mut rng) {
            Action::Leave { node } => {
                assert!(!sys.is_honest(node).unwrap());
                assert_ne!(sys.node_cluster(node).unwrap(), target);
            }
            other => panic!("expected leave, got {other:?}"),
        }
        // Second: corrupt join contacting the target.
        match adv.decide(&sys, &mut rng) {
            Action::Join { honest, contact } => {
                assert!(!honest);
                assert_eq!(contact, Some(target));
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn join_leave_attack_retargets_dead_cluster() {
        let sys = system(150, 0.2, 5);
        let ghost = ClusterId::from_raw(99_999);
        let mut adv = JoinLeaveAttack::new(ghost, 0.3);
        let mut rng = DetRng::new(5);
        let _ = adv.decide(&sys, &mut rng);
        assert!(sys.cluster(adv.target).is_some(), "must retarget to live");
    }

    #[test]
    fn forced_leave_attack_evicts_honest_from_target() {
        let sys = system(150, 0.2, 6);
        let target = sys.cluster_ids()[1];
        let mut adv = ForcedLeaveAttack::new(target, 0.2);
        let mut rng = DetRng::new(6);
        match adv.decide(&sys, &mut rng) {
            Action::Leave { node } => {
                assert!(sys.is_honest(node).unwrap(), "DoS hits honest nodes");
                assert_eq!(sys.node_cluster(node).unwrap(), target);
            }
            other => panic!("expected leave, got {other:?}"),
        }
        // Next step replaces the departed node.
        assert!(matches!(adv.decide(&sys, &mut rng), Action::Join { .. }));
    }

    #[test]
    fn adversary_is_object_safe() {
        let sys = system(100, 0.1, 7);
        let mut rng = DetRng::new(7);
        let mut advs: Vec<Box<dyn Adversary>> = vec![
            Box::new(Quiet),
            Box::new(RandomChurn::balanced(0.2)),
            Box::new(JoinLeaveAttack::new(sys.cluster_ids()[0], 0.2)),
        ];
        for a in advs.iter_mut() {
            let _ = a.decide(&sys, &mut rng);
        }
    }
}
