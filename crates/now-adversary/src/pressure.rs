//! Structural-pressure attacks: churn aimed at the split/merge machinery
//! rather than directly at cluster composition.
//!
//! The §3.3 join–leave attack targets *who* is in a cluster; these
//! strategies target the *operations* that reshape clusters. They probe
//! corners the paper's analysis treats implicitly:
//!
//! * [`SplitForcing`] floods one cluster with (corrupt, budget
//!   permitting) arrivals so it keeps splitting — the adversary hopes to
//!   seize one of the halves, since a split partitions the *current*
//!   membership rather than resampling it.
//! * [`MergeForcing`] drains a cluster's members to force merges — each
//!   merge dissolves a `randCl`-chosen victim and re-joins the target's
//!   members, churning two clusters' worth of membership per step.
//! * [`BurstChurn`] alternates bursts of joins and leaves — the high-
//!   rate regime the parallel-batch generalization (the paper's
//!   footnote) is meant for; it doubles as the workload of the batch
//!   experiments.

use crate::budget::CorruptionBudget;
use crate::strategies::{Action, Adversary};
use now_core::NowSystem;
use now_net::{ClusterId, DetRng};
use rand::Rng;

/// Flood a target cluster with arrivals so that it oversizes and splits
/// every few steps.
///
/// All arrivals contact the target (NOW's `randCl` re-routes each one to
/// a random host, so against the full protocol the pressure diffuses;
/// against the no-shuffle ablation the target itself inflates). Corrupt
/// while the budget allows, so captured halves stay captured.
#[derive(Debug, Clone, Copy)]
pub struct SplitForcing {
    /// The cluster under pressure.
    pub target: ClusterId,
    /// Corruption budget for the flood's arrivals.
    pub budget: CorruptionBudget,
}

impl SplitForcing {
    /// Floods `target` with arrivals, corrupting a `tau` fraction.
    pub fn new(target: ClusterId, tau: f64) -> Self {
        SplitForcing {
            target,
            budget: CorruptionBudget::new(tau),
        }
    }
}

impl Adversary for SplitForcing {
    fn decide(&mut self, sys: &NowSystem, rng: &mut DetRng) -> Action {
        if sys.cluster(self.target).is_none() {
            let ids = sys.cluster_ids();
            // INVARIANT: LastCluster guard keeps `ids` non-empty; the
            // draw range is its exact length.
            self.target = ids[rng.gen_range(0..ids.len())];
        }
        Action::Join {
            honest: !self.budget.can_corrupt_arrival(sys),
            contact: Some(self.target),
        }
    }

    fn name(&self) -> &'static str {
        "split-forcing"
    }
}

/// Drain a target cluster to force merges.
///
/// Each step forces one member of the target to leave (honest members
/// first — the adversary would rather keep its own nodes in play). When
/// the target dips below `k·logN/l`, the merge machinery dissolves a
/// random victim cluster into it and re-joins the original members:
/// maximal structural churn for one departure per step.
#[derive(Debug, Clone, Copy)]
pub struct MergeForcing {
    /// The cluster being drained.
    pub target: ClusterId,
    /// Corruption budget for interleaved replacement arrivals.
    pub budget: CorruptionBudget,
    rejoin_next: bool,
}

impl MergeForcing {
    /// Drains `target`, replacing departures with arrivals corrupted at
    /// fraction `tau` (so the population — and the model's floor — hold).
    pub fn new(target: ClusterId, tau: f64) -> Self {
        MergeForcing {
            target,
            budget: CorruptionBudget::new(tau),
            rejoin_next: false,
        }
    }
}

impl Adversary for MergeForcing {
    fn decide(&mut self, sys: &NowSystem, rng: &mut DetRng) -> Action {
        if sys.cluster(self.target).is_none() {
            let ids = sys.cluster_ids();
            // INVARIANT: LastCluster guard keeps `ids` non-empty; the
            // draw range is its exact length.
            self.target = ids[rng.gen_range(0..ids.len())];
        }
        if self.rejoin_next {
            self.rejoin_next = false;
            return Action::Join {
                honest: !self.budget.can_corrupt_arrival(sys),
                contact: None,
            };
        }
        // INVARIANT: the retarget branch above just ensured the
        // target names a live cluster.
        let cluster = sys.cluster(self.target).expect("checked live above");
        let victim = cluster
            .members()
            .find(|&m| sys.is_honest(m).unwrap_or(false))
            .or_else(|| cluster.members().next());
        match victim {
            Some(node) => {
                self.rejoin_next = true;
                Action::Leave { node }
            }
            None => Action::Idle,
        }
    }

    fn name(&self) -> &'static str {
        "merge-forcing"
    }
}

/// Alternating bursts: `burst` consecutive joins, then `burst`
/// consecutive leaves of uniformly random nodes, repeated.
///
/// Population is stationary over a full period but the instantaneous
/// churn rate is maximal — the regime in which batching several
/// operations into one time step (the paper's footnote) pays off.
#[derive(Debug, Clone, Copy)]
pub struct BurstChurn {
    /// Operations per burst.
    pub burst: u64,
    /// Corruption budget for the join bursts.
    pub budget: CorruptionBudget,
    position: u64,
}

impl BurstChurn {
    /// Bursts of `burst` operations with corruption fraction `tau`.
    ///
    /// # Panics
    /// Panics if `burst == 0`.
    pub fn new(burst: u64, tau: f64) -> Self {
        assert!(burst > 0, "burst length must be positive");
        BurstChurn {
            burst,
            budget: CorruptionBudget::new(tau),
            position: 0,
        }
    }

    /// Whether the driver is currently in the joining half of its
    /// period.
    pub fn is_joining(&self) -> bool {
        self.position % (2 * self.burst) < self.burst
    }
}

impl Adversary for BurstChurn {
    fn decide(&mut self, sys: &NowSystem, rng: &mut DetRng) -> Action {
        let joining = self.is_joining();
        self.position += 1;
        if joining {
            Action::Join {
                honest: !self.budget.can_corrupt_arrival(sys),
                contact: None,
            }
        } else {
            let nodes = sys.node_ids();
            Action::Leave {
                // INVARIANT: population floor keeps the id list non-empty;
                // the draw range is its exact length.
                node: nodes[rng.gen_range(0..nodes.len())],
            }
        }
    }

    fn name(&self) -> &'static str {
        "burst-churn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_core::NowParams;

    fn system(n0: usize, tau: f64, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, tau, seed)
    }

    #[test]
    fn split_forcing_always_joins_at_target() {
        let sys = system(150, 0.2, 1);
        let target = sys.cluster_ids()[0];
        let mut adv = SplitForcing::new(target, 0.3);
        let mut rng = DetRng::new(1);
        for _ in 0..5 {
            match adv.decide(&sys, &mut rng) {
                Action::Join { contact, .. } => assert_eq!(contact, Some(target)),
                other => panic!("expected join, got {other:?}"),
            }
        }
    }

    #[test]
    fn split_forcing_retargets_dead_cluster() {
        let sys = system(150, 0.2, 2);
        let mut adv = SplitForcing::new(ClusterId::from_raw(77_777), 0.3);
        let mut rng = DetRng::new(2);
        let _ = adv.decide(&sys, &mut rng);
        assert!(sys.cluster(adv.target).is_some());
    }

    #[test]
    fn merge_forcing_alternates_leave_and_join() {
        let sys = system(150, 0.2, 3);
        let target = sys.cluster_ids()[0];
        let mut adv = MergeForcing::new(target, 0.2);
        let mut rng = DetRng::new(3);
        match adv.decide(&sys, &mut rng) {
            Action::Leave { node } => {
                assert_eq!(sys.node_cluster(node).unwrap(), target);
                assert!(sys.is_honest(node).unwrap(), "honest drained first");
            }
            other => panic!("expected leave, got {other:?}"),
        }
        assert!(matches!(adv.decide(&sys, &mut rng), Action::Join { .. }));
    }

    #[test]
    fn burst_churn_has_the_right_period() {
        let sys = system(200, 0.1, 4);
        let mut adv = BurstChurn::new(3, 0.1);
        let mut rng = DetRng::new(4);
        let mut pattern = Vec::new();
        for _ in 0..12 {
            pattern.push(matches!(adv.decide(&sys, &mut rng), Action::Join { .. }));
        }
        assert_eq!(
            pattern,
            vec![true, true, true, false, false, false, true, true, true, false, false, false]
        );
    }

    #[test]
    #[should_panic(expected = "burst length")]
    fn burst_zero_rejected() {
        let _ = BurstChurn::new(0, 0.1);
    }

    /// End-to-end: split-forcing actually causes splits under the real
    /// protocol, and the invariants survive it at low τ.
    #[test]
    fn split_forcing_triggers_splits_against_now() {
        use crate::strategies::Adversary as _;
        let mut sys = system(150, 0.1, 5);
        let target = sys.cluster_ids()[0];
        let mut adv = SplitForcing::new(target, 0.1);
        let mut rng = DetRng::new(5);
        for _ in 0..80 {
            match adv.decide(&sys, &mut rng) {
                Action::Join { honest, contact } => {
                    let c = contact.filter(|c| sys.cluster(*c).is_some());
                    match c {
                        Some(c) => {
                            sys.join_via(c, honest);
                        }
                        None => {
                            sys.join(honest);
                        }
                    }
                }
                _ => unreachable!("split forcing only joins"),
            }
        }
        let (_, _, splits, _) = sys.op_counts();
        assert!(splits > 0, "80 arrivals must split something");
        sys.check_consistency().unwrap();
    }

    /// End-to-end: merge-forcing causes merges under the real protocol.
    #[test]
    fn merge_forcing_triggers_merges_against_now() {
        let mut sys = system(200, 0.1, 6);
        let target = sys.cluster_ids()[0];
        let mut adv = MergeForcing::new(target, 0.1);
        let mut rng = DetRng::new(6);
        for _ in 0..120 {
            match adv.decide(&sys, &mut rng) {
                Action::Leave { node } => {
                    let _ = sys.leave(node);
                }
                Action::Join { honest, .. } => {
                    sys.join(honest);
                }
                Action::Idle => {}
            }
        }
        let (_, _, _, merges) = sys.op_counts();
        assert!(merges > 0, "sustained draining must merge something");
        sys.check_consistency().unwrap();
    }
}
