//! NOW protocol parameters and derived quantities.

use crate::error::NowError;
use now_over::OverParams;

/// Which quorum/agreement substrate a deployment runs on, and therefore
/// which corruption bound it is sized for.
///
/// The paper's Remark 1: *"One can tolerate a fraction of Byzantine
/// nodes up to 1/2 − ε, but then we need to use cryptographic tools to
/// allow for broadcast and Byzantine agreement."*
///
/// * [`SecurityMode::Plain`] — the default model (§2): no signatures;
///   intra-cluster `randNum` is secure while Byzantine < 1/3 of the
///   cluster, and the target invariant is **strictly more than two
///   thirds honest** per cluster (Lemma 1 / Theorem 3).
/// * [`SecurityMode::Authenticated`] — Remark 1's variant: unforgeable
///   signatures enable authenticated broadcast (Dolev–Strong, in
///   `now_agreement::dolev_strong`) and certificate-carrying quorum
///   messages (`now_agreement::certificate`), so `randNum` and the
///   cluster invariant only need an **honest majority** (Byzantine
///   < 1/2).
///
/// In both modes outright message *forgery* — the adversary alone
/// clearing the "more than half of the cluster" rule — requires
/// Byzantine > 1/2, since honest members never co-sign a forged message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SecurityMode {
    /// Information-theoretic quorums; τ sized below 1/3 (the paper's
    /// main model).
    #[default]
    Plain,
    /// Simulated-signature quorums; τ sized below 1/2 (Remark 1).
    Authenticated,
}

impl SecurityMode {
    /// The corruption supremum this mode is sized for (1/3 or 1/2).
    pub fn tau_bound(self) -> f64 {
        match self {
            SecurityMode::Plain => 1.0 / 3.0,
            SecurityMode::Authenticated => 0.5,
        }
    }

    /// Whether a cluster with `byz` Byzantine members out of `size`
    /// still runs `randNum` securely under this mode.
    ///
    /// Plain: Byzantine strictly below one third. Authenticated:
    /// Byzantine strictly below one half (honest majority signs the
    /// reveal set).
    pub fn rand_num_secure(self, byz: usize, size: usize) -> bool {
        match self {
            SecurityMode::Plain => 3 * byz < size,
            SecurityMode::Authenticated => 2 * byz < size,
        }
    }

    /// Whether a cluster with `honest` honest members out of `size`
    /// satisfies this mode's target invariant (the property Theorem 3
    /// maintains): strictly more than 2/3 honest in Plain mode,
    /// strictly more than 1/2 honest in Authenticated mode.
    pub fn invariant_holds(self, honest: usize, size: usize) -> bool {
        match self {
            SecurityMode::Plain => 3 * honest > 2 * size,
            SecurityMode::Authenticated => 2 * honest > size,
        }
    }
}

impl std::fmt::Display for SecurityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SecurityMode::Plain => "plain",
            SecurityMode::Authenticated => "authenticated",
        })
    }
}

/// Static parameters of a NOW deployment.
///
/// The paper's symbols map as follows:
/// * `capacity` = `N`, the maximal network size (population stays within
///   `[N^{1/y}, N^z]`, defaulting to the paper's headline `[√N, N]`);
/// * `k` — the security parameter: clusters target `k·logN` members; the
///   larger `k`, the lower the adversary's chance to tip a cluster;
/// * `l` — the band constant (`l > √2`): split above `l·k·logN`, merge
///   below `k·logN/l`;
/// * `tau` — the corruption bound the deployment is sized for
///   (`τ ≤ 1/3 − ε` in [`SecurityMode::Plain`], `τ ≤ 1/2 − ε` in
///   [`SecurityMode::Authenticated`]; informational — the adversary
///   model lives in `now-adversary`);
/// * `epsilon` — the slack `ε` in the drift analysis (Lemmas 2–3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NowParams {
    capacity: u64,
    k: usize,
    l: f64,
    tau: f64,
    epsilon: f64,
    over: OverParams,
    security: SecurityMode,
    /// Population floor exponent: `n ≥ N^{1/y}` (paper default `y = 2`).
    y: f64,
    /// Population ceiling exponent: `n ≤ N^z` (paper default `z = 1`).
    z: f64,
    walk_length_factor: f64,
    max_walk_restarts: usize,
    shuffle: bool,
    cascade: bool,
    /// Ablation: exchange at most this many members per `exchange`
    /// invocation (`None` = the paper's "all of its nodes").
    exchange_cap: Option<usize>,
}

impl NowParams {
    /// Parameters for a system of maximal size `capacity`, with the
    /// defaults `k = 2`, `l = 1.5`, `τ = 0.30`, `ε = 0.05`.
    ///
    /// # Errors
    /// Returns [`NowError::BadParams`] under the same conditions as
    /// [`NowParams::new`].
    pub fn for_capacity(capacity: u64) -> Result<Self, NowError> {
        Self::new(capacity, 2, 1.5, 0.30, 0.05)
    }

    /// Fully explicit constructor for the paper's main model
    /// ([`SecurityMode::Plain`]).
    ///
    /// # Errors
    /// Returns [`NowError::BadParams`] if `capacity < 16`, `k == 0`,
    /// `l ≤ √2`, `τ ∉ [0, 1/3)`, `ε ≤ 0`, or `τ·(1+ε) ≥ 1/3` (the
    /// regime Lemma 1 needs).
    pub fn new(capacity: u64, k: usize, l: f64, tau: f64, epsilon: f64) -> Result<Self, NowError> {
        Self::build(SecurityMode::Plain, capacity, k, l, tau, epsilon)
    }

    /// Constructor for Remark 1's crypto-hardened variant
    /// ([`SecurityMode::Authenticated`]): signatures buy an honest-
    /// *majority* requirement, so `τ` may range up to `1/2 − ε`.
    ///
    /// # Errors
    /// Returns [`NowError::BadParams`] if `capacity < 16`, `k == 0`,
    /// `l ≤ √2`, `τ ∉ [0, 1/2)`, `ε ≤ 0`, or `τ·(1+ε) ≥ 1/2`.
    pub fn new_authenticated(
        capacity: u64,
        k: usize,
        l: f64,
        tau: f64,
        epsilon: f64,
    ) -> Result<Self, NowError> {
        Self::build(SecurityMode::Authenticated, capacity, k, l, tau, epsilon)
    }

    fn build(
        security: SecurityMode,
        capacity: u64,
        k: usize,
        l: f64,
        tau: f64,
        epsilon: f64,
    ) -> Result<Self, NowError> {
        let fail = |why: &str| {
            Err(NowError::BadParams {
                reason: why.to_string(),
            })
        };
        if capacity < 16 {
            return fail("capacity must be at least 16");
        }
        if k == 0 {
            return fail("k must be positive");
        }
        if l <= std::f64::consts::SQRT_2 {
            return fail("l must exceed sqrt(2) so split halves stay above the merge bound");
        }
        let bound = security.tau_bound();
        if !(0.0..bound).contains(&tau) {
            return match security {
                SecurityMode::Plain => fail("tau must lie in [0, 1/3)"),
                SecurityMode::Authenticated => {
                    fail("tau must lie in [0, 1/2) in authenticated mode")
                }
            };
        }
        if epsilon <= 0.0 {
            return fail("epsilon must be positive");
        }
        if tau * (1.0 + epsilon) >= bound {
            return match security {
                SecurityMode::Plain => fail("tau(1+epsilon) must stay below 1/3 (Lemma 1 regime)"),
                SecurityMode::Authenticated => {
                    fail("tau(1+epsilon) must stay below 1/2 (Remark 1 regime)")
                }
            };
        }
        Ok(NowParams {
            capacity,
            k,
            l,
            tau,
            epsilon,
            over: OverParams::for_capacity(capacity),
            security,
            y: 2.0,
            z: 1.0,
            walk_length_factor: 1.0,
            max_walk_restarts: 64,
            shuffle: true,
            cascade: true,
            exchange_cap: None,
        })
    }

    /// Generalizes the population band to `N^{1/y} ≤ n ≤ N^z` (the
    /// paper's §2: *"this can be relaxed to N^{1/y} ≤ n ≤ N^z for all
    /// constants y, z > 1"*). The default is the headline band
    /// `(y, z) = (2, 1)`, i.e. `√N ≤ n ≤ N`.
    ///
    /// # Errors
    /// Returns [`NowError::BadParams`] if `y < 1`, `z < 1`, or the
    /// ceiling `N^z` overflows `u64`.
    pub fn with_population_exponents(mut self, y: f64, z: f64) -> Result<Self, NowError> {
        let fail = |why: &str| {
            Err(NowError::BadParams {
                reason: why.to_string(),
            })
        };
        if !(y >= 1.0 && y.is_finite()) {
            return fail("population floor exponent y must be >= 1");
        }
        if !(z >= 1.0 && z.is_finite()) {
            return fail("population ceiling exponent z must be >= 1");
        }
        if (self.capacity as f64).powf(z) > u64::MAX as f64 / 2.0 {
            return fail("population ceiling N^z overflows u64");
        }
        self.y = y;
        self.z = z;
        Ok(self)
    }

    /// **Ablation switch**: disables the `exchange` shuffling in
    /// `join`/`leave`. This reproduces the *static clustering* baseline
    /// the paper argues against in §3.3 — the join–leave attack defeats
    /// it (experiment X-JLA).
    pub fn with_shuffle(mut self, shuffle: bool) -> Self {
        self.shuffle = shuffle;
        self
    }

    /// **Ablation switch**: disables the cascade rule of `leave` (the
    /// receivers of a leaving cluster's nodes re-exchange). The Theorem
    /// 3 proof leans on the cascade; the ablation bench measures its
    /// cost share and its effect on composition drift.
    pub fn with_cascade(mut self, cascade: bool) -> Self {
        self.cascade = cascade;
        self
    }

    /// **Ablation switch**: caps how many members one `exchange`
    /// invocation shuffles (`None` = the paper's "exchanges all of its
    /// nodes"). Lemmas 2–3 analyze the drift when only `O(log N)` nodes
    /// are exchanged between full refreshes — this knob lets the
    /// ablation bench trade shuffle volume against composition drift.
    pub fn with_exchange_cap(mut self, cap: Option<usize>) -> Self {
        self.exchange_cap = cap;
        self
    }

    /// Whether `exchange` shuffling is enabled (default true).
    pub fn shuffle_enabled(&self) -> bool {
        self.shuffle
    }

    /// Whether the leave cascade is enabled (default true).
    pub fn cascade_enabled(&self) -> bool {
        self.cascade
    }

    /// The per-invocation exchange cap, if any (default `None`).
    pub fn exchange_cap(&self) -> Option<usize> {
        self.exchange_cap
    }

    /// Overrides the CTRW duration factor (default 1.0; duration is
    /// `factor · log²(m) / target_degree` for an overlay of `m`
    /// clusters, giving ≈ `factor · log² m` expected hops).
    pub fn with_walk_length_factor(mut self, factor: f64) -> Self {
        self.walk_length_factor = factor.max(0.01);
        self
    }

    /// The capacity `N`.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The security parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The band constant `l`.
    pub fn l(&self) -> f64 {
        self.l
    }

    /// The designed-for corruption bound `τ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The drift slack `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The quorum/agreement substrate mode (Plain or Authenticated).
    pub fn security(&self) -> SecurityMode {
        self.security
    }

    /// The population floor exponent `y` (`n ≥ N^{1/y}`).
    pub fn population_floor_exponent(&self) -> f64 {
        self.y
    }

    /// The population ceiling exponent `z` (`n ≤ N^z`).
    pub fn population_ceiling_exponent(&self) -> f64 {
        self.z
    }

    /// Parameters of the OVER overlay this deployment uses.
    pub fn over(&self) -> OverParams {
        self.over
    }

    /// `log₂ N`.
    pub fn log_n(&self) -> f64 {
        (self.capacity as f64).log2()
    }

    /// Target cluster size `⌈k·logN⌉`.
    pub fn target_cluster_size(&self) -> usize {
        (self.k as f64 * self.log_n()).ceil() as usize
    }

    /// Split threshold: a cluster larger than `⌊l·k·logN⌋` splits.
    pub fn max_cluster_size(&self) -> usize {
        (self.l * self.k as f64 * self.log_n()).floor() as usize
    }

    /// Merge threshold: a cluster smaller than `⌈k·logN/l⌉` merges.
    pub fn min_cluster_size(&self) -> usize {
        (self.k as f64 * self.log_n() / self.l).ceil() as usize
    }

    /// Lower bound on the population (`N^{1/y}`, default `√N`) the model
    /// assumes.
    pub fn min_population(&self) -> u64 {
        (self.capacity as f64).powf(1.0 / self.y).floor() as u64
    }

    /// Upper bound on the population (`N^z`, default `N`) the model
    /// assumes.
    pub fn max_population(&self) -> u64 {
        (self.capacity as f64).powf(self.z).floor() as u64
    }

    /// CTRW duration for an overlay of `m` clusters: chosen so the
    /// expected hop count is ≈ `walk_length_factor · log²(m+2)`
    /// (the paper's "walks of length O(log²n)").
    pub fn ctrw_duration(&self, m: usize) -> f64 {
        let log_m = ((m + 2) as f64).log2();
        self.walk_length_factor * log_m * log_m / self.over.target_degree() as f64
    }

    /// Size-bias acceptance normalizer: the walk's endpoint `C` is
    /// accepted with probability `|C| / max_cluster_size` (the static
    /// bound stands in for `max_C |C|`, which the protocol cannot know
    /// exactly; sizes never exceed it while the invariants hold).
    pub fn acceptance_probability(&self, cluster_size: usize) -> f64 {
        (cluster_size as f64 / self.max_cluster_size() as f64).clamp(0.0, 1.0)
    }

    /// Cap on biased-walk restarts before `rand_cl` falls back to the
    /// current endpoint (guards against pathological overlays; never hit
    /// in the invariant regime — restarts are geometric with success
    /// probability ≥ `1/l²`).
    pub fn max_walk_restarts(&self) -> usize {
        self.max_walk_restarts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_band_ordering() {
        let p = NowParams::for_capacity(1 << 12).unwrap();
        assert!(p.min_cluster_size() < p.target_cluster_size());
        assert!(p.target_cluster_size() < p.max_cluster_size());
        // A split of a just-oversized cluster must land both halves
        // above the merge bound: (max+1)/2 ≥ min requires l > √2.
        assert!(p.max_cluster_size().div_ceil(2) >= p.min_cluster_size());
    }

    #[test]
    fn derived_sizes_for_pow2() {
        let p = NowParams::new(1 << 10, 3, 1.5, 0.25, 0.1).unwrap();
        assert_eq!(p.target_cluster_size(), 30); // 3·10
        assert_eq!(p.max_cluster_size(), 45); // 1.5·30
        assert_eq!(p.min_cluster_size(), 20); // 30/1.5
        assert_eq!(p.min_population(), 32);
        assert_eq!(p.max_population(), 1 << 10);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(
            NowParams::new(8, 2, 1.5, 0.2, 0.1).is_err(),
            "tiny capacity"
        );
        assert!(NowParams::new(1 << 10, 0, 1.5, 0.2, 0.1).is_err(), "zero k");
        assert!(NowParams::new(1 << 10, 2, 1.2, 0.2, 0.1).is_err(), "l ≤ √2");
        assert!(
            NowParams::new(1 << 10, 2, 1.5, 0.34, 0.1).is_err(),
            "tau ≥ 1/3"
        );
        assert!(
            NowParams::new(1 << 10, 2, 1.5, 0.2, 0.0).is_err(),
            "epsilon 0"
        );
        assert!(
            NowParams::new(1 << 10, 2, 1.5, 0.32, 0.2).is_err(),
            "tau(1+eps) ≥ 1/3"
        );
    }

    #[test]
    fn error_message_is_informative() {
        let err = NowParams::new(1 << 10, 2, 1.0, 0.2, 0.1).unwrap_err();
        assert!(err.to_string().contains("sqrt(2)"));
    }

    #[test]
    fn acceptance_probability_clamped() {
        let p = NowParams::for_capacity(1 << 10).unwrap();
        assert_eq!(p.acceptance_probability(0), 0.0);
        assert_eq!(p.acceptance_probability(10 * p.max_cluster_size()), 1.0);
        let half = p.acceptance_probability(p.max_cluster_size() / 2);
        assert!(half > 0.0 && half < 1.0);
    }

    #[test]
    fn ctrw_duration_grows_with_overlay_size() {
        let p = NowParams::for_capacity(1 << 12).unwrap();
        assert!(p.ctrw_duration(100) > p.ctrw_duration(10));
        assert!(p.ctrw_duration(0) > 0.0);
    }

    #[test]
    fn walk_factor_override() {
        let p = NowParams::for_capacity(1 << 12).unwrap();
        let fast = p.with_walk_length_factor(2.0);
        assert!((fast.ctrw_duration(50) - 2.0 * p.ctrw_duration(50)).abs() < 1e-12);
    }

    // ----- SecurityMode (Remark 1) -----

    #[test]
    fn authenticated_mode_accepts_tau_up_to_half() {
        // τ = 0.4 is invalid in Plain mode but fine in Authenticated.
        assert!(NowParams::new(1 << 10, 2, 1.5, 0.40, 0.05).is_err());
        let p = NowParams::new_authenticated(1 << 10, 2, 1.5, 0.40, 0.05).unwrap();
        assert_eq!(p.security(), SecurityMode::Authenticated);
        assert!((p.tau() - 0.40).abs() < 1e-12);
    }

    #[test]
    fn authenticated_mode_still_bounded_below_half() {
        assert!(NowParams::new_authenticated(1 << 10, 2, 1.5, 0.50, 0.05).is_err());
        assert!(
            NowParams::new_authenticated(1 << 10, 2, 1.5, 0.48, 0.1).is_err(),
            "tau(1+eps) ≥ 1/2"
        );
    }

    #[test]
    fn mode_thresholds() {
        use SecurityMode::*;
        // randNum security: 3 byz of 10 — fine in both; 4 of 10 — only auth.
        assert!(Plain.rand_num_secure(3, 10));
        assert!(!Plain.rand_num_secure(4, 10));
        assert!(Authenticated.rand_num_secure(4, 10));
        assert!(!Authenticated.rand_num_secure(5, 10));
        // Invariant: 7 honest of 10 clears plain; 6 of 10 only auth.
        assert!(Plain.invariant_holds(7, 10));
        assert!(!Plain.invariant_holds(6, 10));
        assert!(Authenticated.invariant_holds(6, 10));
        assert!(!Authenticated.invariant_holds(5, 10));
    }

    #[test]
    fn mode_display_and_default() {
        assert_eq!(SecurityMode::default(), SecurityMode::Plain);
        assert_eq!(SecurityMode::Plain.to_string(), "plain");
        assert_eq!(SecurityMode::Authenticated.to_string(), "authenticated");
        assert!((SecurityMode::Plain.tau_bound() - 1.0 / 3.0).abs() < 1e-12);
        assert!((SecurityMode::Authenticated.tau_bound() - 0.5).abs() < 1e-12);
    }

    // ----- Population exponents (§2 relaxation) -----

    #[test]
    fn default_population_band_is_sqrt_to_n() {
        let p = NowParams::for_capacity(1 << 10).unwrap();
        assert_eq!(p.population_floor_exponent(), 2.0);
        assert_eq!(p.population_ceiling_exponent(), 1.0);
        assert_eq!(p.min_population(), 32);
        assert_eq!(p.max_population(), 1024);
    }

    #[test]
    fn generalized_exponents_widen_the_band() {
        let p = NowParams::for_capacity(1 << 10)
            .unwrap()
            .with_population_exponents(3.0, 1.5)
            .unwrap();
        // N^{1/3} = 2^{10/3} ≈ 10.08 → 10; N^{1.5} = 2^15 = 32768.
        assert_eq!(p.min_population(), 10);
        assert_eq!(p.max_population(), 32768);
    }

    #[test]
    fn exponent_validation() {
        let p = NowParams::for_capacity(1 << 10).unwrap();
        assert!(p.with_population_exponents(0.5, 1.0).is_err(), "y < 1");
        assert!(p.with_population_exponents(2.0, 0.9).is_err(), "z < 1");
        assert!(
            p.with_population_exponents(2.0, 7.0).is_err(),
            "2^70 overflows u64"
        );
        assert!(
            p.with_population_exponents(1.0, 1.0).is_ok(),
            "y = z = 1 allowed"
        );
    }

    // ----- Exchange cap ablation -----

    #[test]
    fn exchange_cap_round_trips() {
        let p = NowParams::for_capacity(1 << 10).unwrap();
        assert_eq!(p.exchange_cap(), None);
        let capped = p.with_exchange_cap(Some(5));
        assert_eq!(capped.exchange_cap(), Some(5));
        assert_eq!(capped.with_exchange_cap(None).exchange_cap(), None);
    }
}
