//! NOW — *Neighbors On Watch* (Guerraoui, Huc, Kermarrec; PODC 2013).
//!
//! NOW maintains, under heavy churn and a Byzantine adversary, a
//! partition of the network into clusters of size `Θ(log N)` such that
//! every cluster keeps **more than two thirds honest members** with high
//! probability, while the total population may vary polynomially
//! (`√N ≤ n ≤ N`). Clusters form the vertices of the OVER expander
//! overlay ([`now_over`]); all cross-cluster influence flows through the
//! quorum rule of [`now_agreement::quorum`].
//!
//! The crate exposes:
//!
//! * [`NowParams`] — the paper's parameters (`N`, `k`, `l`, `τ`, `ε`)
//!   with the derived cluster-size band `[k·logN/l, l·k·logN]`.
//! * [`NowSystem`] — the live system: registry of nodes, clusters,
//!   overlay, ledger; with the maintenance operations `join`, `leave`
//!   (which internally trigger `split`/`merge`/`exchange`), the biased
//!   continuous-time random walk [`NowSystem::rand_cl_from`], and invariant
//!   audits ([`SystemAudit`]).
//! * [`init`] — the initialization phase: genuinely executed discovery
//!   flooding and committee-based clusterization over the synchronous
//!   bus (fidelity L0), plus the fast path used by large-scale
//!   experiments.
//! * [`Malice`] — the hook through which an adversary exploits
//!   *compromised* clusters (≥ 1/3 Byzantine ⇒ `randNum` steerable;
//!   more than 1/2 ⇒ message forgery). In the Theorem-3 regime these hooks stay
//!   dormant because no cluster ever crosses the thresholds — which is
//!   exactly what the audits verify.
//!
//! # Quickstart
//!
//! ```
//! use now_core::{NowParams, NowSystem};
//!
//! let params = NowParams::for_capacity(1 << 10).unwrap();
//! // 64 initial nodes, 20% corrupted, seed 42.
//! let mut sys = NowSystem::init_fast(params, 64, 0.2, 42);
//! for _ in 0..10 {
//!     sys.join(true); // honest arrivals
//! }
//! let audit = sys.audit();
//! assert!(audit.worst_byz_fraction < 1.0 / 3.0);
//! assert!(audit.size_bounds_ok);
//! ```

// `deny` rather than `forbid`: the persistent wave-worker pool
// ([`WavePool`]) transports lifetime-erased wave jobs to its workers,
// which takes two `unsafe` blocks (SAFETY-documented in
// `wave_exec.rs`); everything else in the crate stays safe code.
#![deny(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

mod audit;
mod batch;
mod cluster;
mod error;
mod event_exec;
mod exchange;
mod exec;
mod hub;
pub mod init;
pub mod init_tree;
mod malice;
mod ops;
mod params;
mod rand_cl;
mod registry;
mod system;
mod views;
mod wave_exec;

pub use audit::SystemAudit;
pub use batch::{BatchReport, JoinSpec, WaveStats};
pub use cluster::Cluster;
pub use error::NowError;
pub use exec::{BatchInput, ExecConfig};
pub use malice::{Malice, NoMalice, RandNumContext, RandNumPurpose};
pub use now_net::{DropReason, EventNetConfig, EventRecord, Partition};
pub use now_trace::{
    FlightRecorder, Histogram, MetricsRegistry, TraceData, TraceEvent, ViolationDump,
};
pub use params::{NowParams, SecurityMode};
pub use rand_cl::WalkTrace;
pub use registry::{
    ClusterIdx, ClusterStats, FootprintHandle, NodeIdx, NodeRecord, Registry, WaveShards,
};
pub use system::NowSystem;
pub use views::{NodeView, ViewAudit};
pub use wave_exec::{normalize_threads, wave_plan_nanos_total, wave_worker_spawn_total, WavePool};
