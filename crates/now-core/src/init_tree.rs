//! Sub-quadratic initialization — the concluding-remark open problem.
//!
//! §6 of the paper: *"Another objective is to devise a procedure for the
//! initialization phase of NOW whose communication cost is o(n²_t0) (as
//! opposed to O(n³_t0))."* This module implements a candidate and
//! measures it (experiment X-INIT2); it is an **extension**, not part of
//! the published protocol.
//!
//! The flooding discovery of [`crate::init`] gives every node global
//! knowledge — necessarily `Ω(n²)` identity-units, since `n` nodes each
//! receive `n − 1` identities. The way below that bound is to drop the
//! *every node* requirement: only a logarithmic **committee** needs
//! global knowledge; ordinary nodes only ever learn their own cluster
//! and its overlay neighborhood (`polylog(N)` identities — exactly the
//! steady-state view NOW maintains anyway).
//!
//! The candidate:
//!
//! 1. **Committee sampling** — a committee of `Θ(logN)` nodes, drawn
//!    uniformly (the honest-majority guarantee is inherited from the
//!    same substituted agreement as in [`crate::init`]; the sampling
//!    cost of the random walks is accounted).
//! 2. **Redundant tree convergecast** ([`tree_discover`]) — each
//!    committee member roots a BFS spanning tree of the bootstrap
//!    graph; identities convergecast up each tree (`O(n·depth)` units
//!    per tree on an expander-like bootstrap, `depth = O(log n)`).
//!    Byzantine interior nodes can *suppress* their subtree (identities
//!    cannot be forged, so suppression is the whole attack); the
//!    committee accepts an identity reported in **more than half** of
//!    the trees. Completeness is therefore probabilistic — measured,
//!    not proved (this is why the problem is open).
//! 3. **Seed agreement + partition** — the committee runs the real
//!    commit–reveal `randNum` and derives the partition, as in
//!    [`crate::init::clusterize`].
//! 4. **Scoped dissemination** — each node receives only its own
//!    cluster's composition and its overlay neighborhood along its tree
//!    paths: `O(polylog)` units per node, `O(n·polylog)` total.
//!
//! Total: `O(n·polylog(n))` message units versus flooding's `O(n·e)`
//! (which is `Ω(n²·polylog)` on the bootstrap densities that keep the
//! honest subgraph connected). Experiment X-INIT2 fits the exponents
//! and charts the completeness/τ/redundancy trade-off.

use crate::error::NowError;
use crate::params::NowParams;
use crate::system::NowSystem;
use now_agreement::outcome::ByzPlan;
use now_agreement::rand_num::rand_num_commit_reveal;
use now_graph::sample::sample_distinct;
use now_graph::Graph;
use now_net::{CostKind, DetRng, Ledger};
use std::collections::BTreeSet;

/// Result of the redundant tree convergecast ([`tree_discover`]).
#[derive(Debug, Clone)]
pub struct TreeDiscoveryOutcome {
    /// Identity sets gathered by each tree's root, in root order.
    pub per_tree: Vec<BTreeSet<usize>>,
    /// Identities accepted by the per-id majority vote over trees.
    pub accepted: BTreeSet<usize>,
    /// Convergecast rounds (the deepest tree's depth).
    pub rounds: u64,
    /// Identity-units transmitted (the `o(n²)` quantity under test).
    pub message_units: u64,
    /// Whether `accepted` contains every identity in the graph.
    pub complete: bool,
}

/// BFS parent array of `g` rooted at `root` (`parent[root] = root`;
/// unreachable vertices get `usize::MAX`).
///
/// Neighbor exploration order is randomized per call: with a fixed
/// order, the trees rooted at different committee members route
/// through the *same* parents (BFS always picks the first-listed
/// neighbor), so one Byzantine interior would suppress the same victim
/// in every tree and the majority vote would never help. Randomized
/// exploration decorrelates the per-tree path-sets — each node's
/// survival events become close to independent across trees, which is
/// what the redundancy argument needs.
fn bfs_parents(g: &Graph, root: usize, rng: &mut DetRng) -> Vec<usize> {
    let n = g.vertex_count();
    let mut parent = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    parent[root] = root;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let mut nbrs: Vec<usize> = g.neighbors(u).collect();
        now_graph::sample::shuffle(&mut nbrs, rng);
        for v in nbrs {
            if parent[v] == usize::MAX {
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    parent
}

/// Runs the redundant spanning-tree discovery on `bootstrap` with one
/// tree per entry of `roots`. Byzantine nodes (per `byz`) suppress
/// their entire subtree in every tree they are interior to, forwarding
/// only their own identity (the worst case: identities cannot be
/// forged, so omission is the only attack, and omitting *itself* would
/// merely exclude the node from the partition); a Byzantine *root*
/// reports nothing. An identity is accepted when strictly more than
/// half of the trees deliver it.
///
/// Costs land under [`CostKind::Discovery`]. `rng` randomizes each
/// tree's exploration order (see `bfs_parents` — correlated trees would
/// defeat the majority vote).
///
/// # Panics
/// Panics if `roots` is empty or any root is out of range.
pub fn tree_discover(
    bootstrap: &Graph,
    byz: &BTreeSet<usize>,
    roots: &[usize],
    ledger: &mut Ledger,
    rng: &mut DetRng,
) -> TreeDiscoveryOutcome {
    assert!(!roots.is_empty(), "tree discovery needs at least one root");
    let n = bootstrap.vertex_count();
    assert!(roots.iter().all(|&r| r < n), "root out of range");
    ledger.begin(CostKind::Discovery);

    let mut per_tree = Vec::with_capacity(roots.len());
    let mut units = 0u64;
    let mut max_depth = 0u64;

    for &root in roots {
        let parent = bfs_parents(bootstrap, root, rng);
        // Depth ordering for the convergecast: children report before
        // parents.
        let mut depth = vec![usize::MAX; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        for v in 0..n {
            if parent[v] == usize::MAX {
                continue;
            }
            let mut d = 0usize;
            let mut cur = v;
            while parent[cur] != cur {
                cur = parent[cur];
                d += 1;
            }
            depth[v] = d;
            order.push(v);
        }
        order.sort_by(|&a, &b| depth[b].cmp(&depth[a]));
        max_depth = max_depth.max(order.iter().map(|&v| depth[v] as u64).max().unwrap_or(0));

        // Convergecast: each honest node forwards its id plus everything
        // its children delivered. A Byzantine interior node swallows its
        // subtree's reports but forwards its *own* id — omitting itself
        // would only get itself excluded from the partition, so the
        // worst case for the protocol is suppression of everyone below.
        let mut gathered: Vec<BTreeSet<usize>> = (0..n).map(|v| BTreeSet::from([v])).collect();
        for &v in &order {
            if v == root {
                continue;
            }
            let packet = if byz.contains(&v) {
                BTreeSet::from([v])
            } else {
                gathered[v].clone()
            };
            units += packet.len() as u64;
            gathered[parent[v]].extend(packet);
        }
        let report = if byz.contains(&root) {
            BTreeSet::new()
        } else {
            std::mem::take(&mut gathered[root])
        };
        per_tree.push(report);
    }

    // Per-identity majority vote across trees.
    let mut votes = vec![0usize; n];
    for report in &per_tree {
        for &id in report {
            votes[id] += 1;
        }
    }
    let accepted: BTreeSet<usize> = (0..n).filter(|&v| 2 * votes[v] > roots.len()).collect();
    // Cross-checking among the roots: each pair exchanges its (hashed)
    // report once.
    let t = roots.len() as u64;
    units += t * (t - 1);

    ledger.add_messages(units);
    ledger.add_rounds(max_depth + 2);
    ledger.end();

    let complete = accepted.len() == n;
    TreeDiscoveryOutcome {
        per_tree,
        accepted,
        rounds: max_depth + 2,
        message_units: units,
        complete,
    }
}

/// Full sub-quadratic initialization: committee sampling, redundant
/// tree discovery with `trees` spanning trees, committee `randNum`,
/// seed-driven partition, and *scoped* dissemination (each node learns
/// only its cluster and overlay neighborhood).
///
/// Returns the constructed system; its ledger carries the measured
/// costs ([`CostKind::Discovery`] / [`CostKind::Clusterization`]).
///
/// # Errors
/// * [`NowError::BadParams`] if the inputs are inconsistent (empty
///   graph, mismatched corruption vector, zero trees).
/// * [`NowError::BadParams`] with reason `"tree discovery incomplete"`
///   if suppression defeated the majority vote — the caller may retry
///   with more trees (the trade-off X-INIT2 charts).
pub fn init_tree_discovered(
    params: NowParams,
    bootstrap: &Graph,
    corrupt: &[bool],
    trees: usize,
    seed: u64,
) -> Result<NowSystem, NowError> {
    let n = bootstrap.vertex_count();
    if n == 0 || corrupt.len() != n {
        return Err(NowError::BadParams {
            reason: format!(
                "bootstrap graph has {n} vertices but corruption vector has {}",
                corrupt.len()
            ),
        });
    }
    if trees == 0 {
        return Err(NowError::BadParams {
            reason: "tree discovery needs at least one tree".to_string(),
        });
    }
    let byz: BTreeSet<usize> = (0..n).filter(|&p| corrupt[p]).collect();
    let mut ledger = Ledger::new();
    let mut rng = DetRng::new(seed);

    // Committee sampling: uniform draw (honest-majority distribution
    // inherited as in `crate::init`); the walk cost is polylog per
    // member instead of the flooding/election costs.
    let committee_size = params.target_cluster_size().min(n).max(trees);
    let committee = sample_distinct(n, committee_size, &mut rng);
    let log_n = (n.max(2) as f64).log2();
    ledger.begin(CostKind::Clusterization);
    ledger.add_messages((committee_size as f64 * log_n * log_n).ceil() as u64);
    ledger.add_rounds((log_n * log_n).ceil() as u64);
    ledger.end();

    // Redundant tree discovery rooted at the first `trees` committee
    // members.
    let roots: Vec<usize> = committee.iter().copied().take(trees).collect();
    let discovery = tree_discover(bootstrap, &byz, &roots, &mut ledger, &mut rng);
    if !discovery.complete {
        return Err(NowError::BadParams {
            reason: format!(
                "tree discovery incomplete: {} of {n} identities accepted (suppression won; \
                 retry with more trees)",
                discovery.accepted.len()
            ),
        });
    }

    // Committee seed agreement (real commit–reveal) + partition.
    ledger.begin(CostKind::Clusterization);
    let committee_byz: BTreeSet<usize> = committee
        .iter()
        .enumerate()
        .filter(|(_, &port)| byz.contains(&port))
        .map(|(local, _)| local)
        .collect();
    let result = rand_num_commit_reveal(
        committee.len(),
        u64::MAX,
        &committee_byz,
        ByzPlan::Silent,
        &mut ledger,
        &mut rng,
    );
    let part_seed = result
        .unanimous()
        .copied()
        .unwrap_or_else(|| result.decisions.values().next().copied().unwrap_or(0));

    // Scoped dissemination: each node receives its cluster's
    // composition plus the neighboring clusters' (≈ degree+1 cluster
    // rosters of k·logN ids) along a tree path of ≤ depth hops.
    let target = params.target_cluster_size() as u64;
    let degree = params.over().target_degree() as u64;
    let depth = discovery.rounds.max(1);
    ledger.add_messages(n as u64 * target * (degree + 1) * depth / 2);
    ledger.add_rounds(depth);
    ledger.end();

    // Build the system from the seed-driven partition (same procedure
    // as the flooding path: permutation + contiguous blocks).
    let mut sys = NowSystem::init_with_corruption(
        params,
        corrupt,
        part_seed ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    *sys.ledger_mut() = ledger;
    Ok(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_graph::gen;

    fn er_bootstrap(n: usize, seed: u64) -> Graph {
        let mut rng = DetRng::new(seed);
        gen::erdos_renyi(n, 0.2, &mut rng)
    }

    #[test]
    fn honest_tree_discovery_is_complete() {
        let g = er_bootstrap(60, 1);
        let mut ledger = Ledger::new();
        let out = tree_discover(
            &g,
            &BTreeSet::new(),
            &[0, 7, 13],
            &mut ledger,
            &mut DetRng::new(11),
        );
        assert!(out.complete);
        assert_eq!(out.accepted.len(), 60);
        for report in &out.per_tree {
            assert_eq!(report.len(), 60, "each honest root gathers everyone");
        }
    }

    #[test]
    fn tree_discovery_is_subquadratic_on_expanders() {
        // ER at this density has O(log n) depth, so units ≈ n·log n per
        // tree — far below the n²/4 of a flooding lower bound.
        let g = er_bootstrap(200, 2);
        let mut ledger = Ledger::new();
        let out = tree_discover(
            &g,
            &BTreeSet::new(),
            &[0, 1, 2],
            &mut ledger,
            &mut DetRng::new(12),
        );
        assert!(out.complete);
        let n = 200u64;
        assert!(
            out.message_units < n * n / 2,
            "units {} should be o(n²) = o({})",
            out.message_units,
            n * n
        );
    }

    #[test]
    fn byzantine_suppression_loses_to_redundancy() {
        // A node is suppressed when its tree path runs through a
        // Byzantine interior in a *majority* of trees; redundancy
        // drives that probability down. Compare 1 tree vs 9 trees
        // under the same two suppressors.
        let g = er_bootstrap(80, 3);
        let byz: BTreeSet<usize> = [5, 11].into_iter().collect();
        let mut l1 = Ledger::new();
        let single = tree_discover(&g, &byz, &[0], &mut l1, &mut DetRng::new(13));
        let mut l9 = Ledger::new();
        let nine = tree_discover(
            &g,
            &byz,
            &[0, 1, 2, 3, 4, 6, 7, 8, 9],
            &mut l9,
            &mut DetRng::new(14),
        );
        assert!(
            nine.accepted.len() >= single.accepted.len(),
            "redundancy must not hurt: {} vs {}",
            nine.accepted.len(),
            single.accepted.len()
        );
        assert!(
            nine.complete,
            "9-tree majority must survive 2 suppressors at this density: {} of 80",
            nine.accepted.len()
        );
    }

    #[test]
    fn byzantine_root_contributes_nothing() {
        let g = er_bootstrap(40, 4);
        let byz: BTreeSet<usize> = [0].into_iter().collect();
        let mut ledger = Ledger::new();
        let out = tree_discover(&g, &byz, &[0, 1, 2], &mut ledger, &mut DetRng::new(15));
        assert!(out.per_tree[0].is_empty(), "byz root reports nothing");
        assert!(!out.per_tree[1].is_empty());
    }

    #[test]
    fn single_tree_with_byz_cut_is_incomplete() {
        // Path graph: a silent middle vertex suppresses half the line in
        // the single tree rooted at one end.
        let g = gen::path(9);
        let byz: BTreeSet<usize> = [4].into_iter().collect();
        let mut ledger = Ledger::new();
        let out = tree_discover(&g, &byz, &[0], &mut ledger, &mut DetRng::new(16));
        assert!(!out.complete);
        assert!(out.accepted.len() < 9);
    }

    #[test]
    fn init_tree_discovered_builds_consistent_system() {
        // 10% corruption with 9-fold redundancy usually completes; a
        // node whose *neighborhood* is Byzantine-heavy can still lose
        // the per-id vote, in which case the documented retry path
        // (more trees, fresh randomized traversals) is the remedy —
        // exercised here exactly as a caller would.
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let g = er_bootstrap(80, 5);
        let corrupt: Vec<bool> = (0..80).map(|i| i % 10 == 0).collect();
        let sys = (0..4)
            .find_map(|attempt| {
                init_tree_discovered(params, &g, &corrupt, 9 + 4 * attempt, 6 + attempt as u64).ok()
            })
            .expect("some retry with more trees completes");
        sys.check_consistency().unwrap();
        assert_eq!(sys.population(), 80);
        assert_eq!(sys.byz_population(), 8);
        assert!(sys.ledger().stats(CostKind::Discovery).total_messages > 0);
        assert!(sys.ledger().stats(CostKind::Clusterization).total_messages > 0);
    }

    #[test]
    fn tree_init_is_cheaper_than_flooding_at_scale() {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let n = 300usize;
        let g = er_bootstrap(n, 7);
        let corrupt = vec![false; n];
        let flood = crate::init::init_discovered(params, &g, &corrupt, 8).unwrap();
        let tree = init_tree_discovered(params, &g, &corrupt, 5, 8).unwrap();
        let flood_units = flood.ledger().stats(CostKind::Discovery).total_messages;
        let tree_units = tree.ledger().stats(CostKind::Discovery).total_messages;
        assert!(
            tree_units * 10 < flood_units,
            "tree {tree_units} should be ≪ flooding {flood_units}"
        );
    }

    #[test]
    fn init_tree_rejects_bad_inputs() {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let g = er_bootstrap(10, 9);
        assert!(init_tree_discovered(params, &g, &[false; 5], 3, 1).is_err());
        assert!(init_tree_discovered(params, &g, &[false; 10], 0, 1).is_err());
    }

    #[test]
    fn incomplete_discovery_reports_retry_hint() {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let g = gen::path(20);
        let mut corrupt = vec![false; 20];
        corrupt[10] = true; // cut vertex
        let err = init_tree_discovered(params, &g, &corrupt, 1, 333).unwrap_err();
        assert!(err.to_string().contains("incomplete"));
    }

    #[test]
    #[should_panic(expected = "at least one root")]
    fn tree_discover_rejects_empty_roots() {
        let g = er_bootstrap(10, 10);
        let mut ledger = Ledger::new();
        let _ = tree_discover(&g, &BTreeSet::new(), &[], &mut ledger, &mut DetRng::new(17));
    }
}
