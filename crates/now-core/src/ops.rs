//! The NOW maintenance operations: `join`, `leave`, `split`, `merge`.
//!
//! Figure 2 of the paper, implemented exactly:
//!
//! * **Join** (Algorithm 1): the newcomer contacts some cluster `C`;
//!   `C` draws `C' = randCl()`; `C'` absorbs the newcomer, announces it,
//!   and then exchanges *all* of its members; if `|C'| > l·k·logN`, `C'`
//!   splits.
//! * **Leave** (Algorithm 2): the departed node's cluster `C` removes it
//!   from all views, exchanges all of its members (with cascade: every
//!   receiving cluster re-exchanges), and merges if `|C| < k·logN/l`.
//! * **Split**: `C` randomly halves itself; the old half keeps `C`'s
//!   overlay vertex and neighbors, the new half enters the overlay via
//!   OVER `Add` with `randCl`-sampled neighbor candidates.
//! * **Merge**: the undersized `C` draws a random victim cluster `C'`
//!   (via `randCl`); `C'`'s overlay vertex is removed (OVER `Remove`),
//!   its members move into `C`, and `C`'s original members re-join the
//!   network through ordinary joins (the paper spreads these re-joins
//!   over subsequent time steps; we execute them inline, which accounts
//!   identical costs and keeps one external operation per time step —
//!   see DESIGN.md §6).

use crate::error::NowError;
use crate::system::NowSystem;
use now_net::{ClusterId, CostKind, NodeId};

impl NowSystem {
    /// A node joins the network; `honest` is the adversary's corruption
    /// decision for this arrival (the paper allows corrupting nodes at
    /// join time only). The contact cluster is drawn uniformly. Returns
    /// the new node's id.
    ///
    /// The population ceiling `N^z` is *not* enforced here — the paper
    /// treats the band `N^{1/y} ≤ n ≤ N^z` as an environment assumption,
    /// not protocol behavior. Use [`NowSystem::try_join`] to opt into
    /// enforcement.
    pub fn join(&mut self, honest: bool) -> NodeId {
        let contact = self.contact_cluster();
        self.join_via(contact, honest)
    }

    /// A node joins by contacting a specific cluster (the adversary
    /// controls its own nodes' contact choice).
    ///
    /// # Panics
    /// Panics if `contact` is not a live cluster.
    pub fn join_via(&mut self, contact: ClusterId, honest: bool) -> NodeId {
        let node = self.join_inner(contact, honest);
        self.time_step += 1;
        node
    }

    /// Ceiling-enforcing join: refuses the arrival when the population
    /// already sits at the model's `N^z` bound (see
    /// [`crate::NowParams::with_population_exponents`]).
    ///
    /// # Errors
    /// [`NowError::PopulationCeiling`] if the arrival would exceed `N^z`.
    pub fn try_join(&mut self, honest: bool) -> Result<NodeId, NowError> {
        let ceiling = self.params.max_population();
        if self.population() >= ceiling {
            return Err(NowError::PopulationCeiling {
                population: self.population(),
                ceiling,
            });
        }
        Ok(self.join(honest))
    }

    /// Join path shared by external arrivals and batched steps: performs
    /// the operation without advancing the time step.
    pub(crate) fn join_inner(&mut self, contact: ClusterId, honest: bool) -> NodeId {
        let node = self.ids.node();
        self.admit(node, honest, contact);
        node
    }

    /// Shared join path for fresh arrivals and merge re-joins.
    fn admit(&mut self, node: NodeId, honest: bool, contact: ClusterId) {
        assert!(
            self.registry.contains_cluster(contact),
            "join: unknown contact cluster {contact}"
        );
        self.ledger.begin(CostKind::Join);
        self.join_count += 1;

        // The contact cluster runs randCl to pick the host.
        let (host, _) = self.rand_cl_from(contact);

        // Host inserts the newcomer into every member's view and
        // announces it to neighboring clusters; the newcomer receives
        // the local overlay structure.
        self.attach_node(node, honest, host);
        let host_size = self.cluster_ref(host).size() as u64;
        self.ledger.add_messages(host_size); // views += x
        self.ledger.add_rounds(1);
        self.account_neighbor_notification(host);
        self.ledger.add_messages(host_size); // x learns its neighborhood
        self.ledger.add_rounds(1);

        // The host exchanges all of its nodes (Algorithm 1). Skipped by
        // the no-shuffle ablation (the baseline the paper's §3.3 attack
        // argument targets).
        if self.params.shuffle_enabled() {
            self.exchange_all(host, false);
        }

        // Oversize check.
        if self.cluster_ref(host).size() > self.params.max_cluster_size() {
            self.split(host);
        }
        self.ledger.end();
    }

    /// A node leaves (voluntarily, by crash, or forced out by the
    /// adversary's DoS — the caller decides *who* leaves).
    ///
    /// # Errors
    /// * [`NowError::UnknownNode`] if the node is not in the network.
    /// * [`NowError::PopulationFloor`] if the departure would push the
    ///   population below the model's `√N` floor.
    pub fn leave(&mut self, node: NodeId) -> Result<(), NowError> {
        self.leave_inner(node)?;
        self.time_step += 1;
        Ok(())
    }

    /// Leave path shared by external departures and batched steps:
    /// performs the operation without advancing the time step.
    pub(crate) fn leave_inner(&mut self, node: NodeId) -> Result<(), NowError> {
        let floor = self.params.min_population();
        if self.population() <= floor {
            return Err(NowError::PopulationFloor {
                population: self.population(),
                floor,
            });
        }
        let home = self.node_cluster(node)?;
        self.ledger.begin(CostKind::Leave);
        self.leave_count += 1;

        // Members of C update their views and tell the neighbors to
        // drop x (accepted once more than half of C says so).
        // INVARIANT: `node` was validated live at the top of this op.
        self.detach_node(node).expect("checked above");
        let size = self.cluster_ref(home).size() as u64;
        self.ledger.add_messages(size);
        self.ledger.add_rounds(1);
        self.account_neighbor_notification(home);

        // C exchanges all of its nodes; receivers cascade (Algorithm 2).
        if self.params.shuffle_enabled() {
            let cascade = self.params.cascade_enabled();
            self.exchange_all(home, cascade);
        }

        // Undersize check.
        if self.cluster_ref(home).size() < self.params.min_cluster_size()
            && self.cluster_count() > 1
        {
            self.merge(home);
        }
        self.ledger.end();
        Ok(())
    }

    /// Splits an oversized cluster `c` into two, per Figure 2. Public
    /// for experiments; normally triggered by [`NowSystem::join`].
    ///
    /// # Panics
    /// Panics if `c` is not a live cluster.
    pub fn split(&mut self, c: ClusterId) {
        assert!(
            self.registry.contains_cluster(c),
            "split: unknown cluster {c}"
        );
        self.ledger.begin(CostKind::Split);
        self.split_count += 1;
        self.hub.count("now_splits_total", 1);

        // The members compute a random partition collaboratively: a
        // randNum seed drives the shuffle, so every member derives the
        // same halves.
        let seed = self.rand_num_in(c, u64::MAX, crate::malice::RandNumPurpose::SplitSeed);
        let mut members = self.cluster_ref(c).member_vec();
        let mut part_rng = now_net::DetRng::new(seed);
        now_graph::sample::shuffle(&mut members, &mut part_rng);
        let half = members.len() / 2;
        // INVARIANT: `half = len / 2 <= len`, so the tail slice is in
        // bounds even for empty member vecs.
        let movers: Vec<NodeId> = members[half..].to_vec();

        // New cluster enters the overlay with randCl-sampled neighbor
        // candidates (OVER Add).
        let new_id = self.ids.cluster();
        self.hub.event(
            self.time_step,
            now_trace::TraceData::Split {
                cluster: c.raw(),
                new_cluster: new_id.raw(),
            },
        );
        self.registry.create_cluster(new_id);
        self.ledger.begin(CostKind::Overlay);
        let want = self.params.over().target_degree() + 4;
        let mut candidates = Vec::with_capacity(want);
        for _ in 0..want {
            let (cand, _) = self.rand_cl_from(c);
            if cand != new_id {
                candidates.push(cand);
            }
        }
        self.overlay.insert_vertex(new_id);
        let linked = self.overlay.add_with_candidates(new_id, &candidates);
        // Edge establishment: the new cluster's membership is sent to
        // every member of each new neighbor (and vice versa).
        let new_size = movers.len() as u64;
        for nbr in &linked {
            let nbr_size = self.cluster_ref(*nbr).size() as u64;
            self.ledger.add_messages(2 * new_size * nbr_size);
        }
        self.ledger.add_rounds(1);
        self.ledger.end();

        for node in movers {
            self.move_node(node, new_id);
        }

        // Old cluster keeps its neighbors but announces the shrinkage;
        // the new cluster announces itself.
        self.account_neighbor_notification(c);
        self.account_neighbor_notification(new_id);
        self.ledger.end();
    }

    /// Merges an undersized cluster `c` per Figure 2: a `randCl`-chosen
    /// victim cluster is dissolved into `c`, and `c`'s original members
    /// re-join the network as ordinary joins. Public for experiments;
    /// normally triggered by [`NowSystem::leave`].
    ///
    /// # Panics
    /// Panics if `c` is not a live cluster or is the only cluster.
    pub fn merge(&mut self, c: ClusterId) {
        assert!(
            self.registry.contains_cluster(c),
            "merge: unknown cluster {c}"
        );
        assert!(self.cluster_count() > 1, "cannot merge the last cluster");
        self.ledger.begin(CostKind::Merge);
        self.merge_count += 1;

        // Draw the victim cluster (≠ c) via randCl; fall back to a
        // uniform pick if the walk keeps landing on c.
        let mut victim = None;
        for _ in 0..8 {
            let (cand, _) = self.rand_cl_from(c);
            if cand != c {
                victim = Some(cand);
                break;
            }
        }
        let victim = victim.unwrap_or_else(|| {
            self.cluster_ids()
                .into_iter()
                // INVARIANT: merge admission refuses to run below two live
                // clusters, so a non-`c` victim exists.
                .find(|&id| id != c)
                .expect("more than one cluster")
        });
        self.hub.count("now_merges_total", 1);
        self.hub.event(
            self.time_step,
            now_trace::TraceData::Merge {
                cluster: c.raw(),
                absorbed: victim.raw(),
            },
        );

        // Original members of c will re-join; victim's members become c.
        let rejoiners: Vec<(NodeId, bool)> = self
            .cluster_ref(c)
            .member_vec()
            .into_iter()
            // INVARIANT: honesty of ids read from a live member vec in
            // the same serial phase.
            .map(|m| (m, self.is_honest(m).expect("live member")))
            .collect();
        let absorbed = self.cluster_ref(victim).member_vec();

        // OVER Remove of the victim's overlay vertex, with floor
        // repairs; account the teardown notifications.
        self.ledger.begin(CostKind::Overlay);
        let victim_size = absorbed.len() as u64;
        let mut teardown_msgs = 0u64;
        for &nbr in self.overlay.neighbors(victim) {
            if let Some(stats) = self.registry.cluster_stats(nbr) {
                teardown_msgs += victim_size * stats.size as u64;
            }
        }
        self.ledger.add_messages(teardown_msgs);
        self.ledger.add_rounds(1);
        self.overlay.remove(victim, &mut self.rng);
        self.ledger.end();

        for node in absorbed {
            self.move_node(node, c);
        }
        for (node, _) in &rejoiners {
            // INVARIANT: rejoiners were read from the victim's live
            // member vec above and nothing detached them since.
            self.detach_node(*node).expect("rejoiner is live");
        }
        self.registry
            .remove_cluster(victim)
        // INVARIANT: the victim was chosen from the live cluster set
        // in this same serial phase.
            .expect("victim is live");
        self.account_neighbor_notification(c);

        // Re-joins through the ordinary join path (contact chosen
        // uniformly, as for any arrival).
        for (node, honest) in rejoiners {
            let contact = self.contact_cluster();
            self.admit(node, honest, contact);
        }
        self.ledger.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NowParams;
    use std::collections::BTreeSet;

    fn system(n0: usize, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, 0.2, seed)
    }

    #[test]
    fn join_grows_population_and_stays_consistent() {
        let mut sys = system(100, 1);
        let before = sys.population();
        let node = sys.join(true);
        assert_eq!(sys.population(), before + 1);
        assert!(sys.node_cluster(node).is_ok());
        assert!(sys.is_honest(node).unwrap());
        sys.check_consistency().unwrap();
    }

    #[test]
    fn byzantine_join_is_recorded() {
        let mut sys = system(100, 2);
        let node = sys.join(false);
        assert!(!sys.is_honest(node).unwrap());
        assert!(sys.byz_node_ids().contains(&node));
    }

    #[test]
    fn join_costs_scale_polylog_in_population() {
        // The polylog claim, testable at fixed N: a 16× population
        // increase must multiply the per-join cost by far less than 16
        // (cluster size is pinned at k·logN; only walk length ~log²m and
        // overlay degree grow). Linear cost would scale ∝ n.
        let mean_join_cost = |n0: usize| -> f64 {
            let params = NowParams::for_capacity(1 << 14).unwrap();
            let mut sys = NowSystem::init_fast(params, n0, 0.1, 3);
            for _ in 0..5 {
                sys.join(true);
            }
            sys.ledger().stats(CostKind::Join).mean_messages()
        };
        // Use populations past the overlay's degree-saturation point so
        // the comparison isolates the log²m walk growth.
        let small = mean_join_cost(800);
        let large = mean_join_cost(3200);
        assert!(
            large < 3.0 * small,
            "per-join cost scaled like n: {small} → {large} (×{:.1})",
            large / small
        );
    }

    #[test]
    fn leave_shrinks_population() {
        let mut sys = system(120, 4);
        let node = sys.node_ids()[5];
        sys.leave(node).unwrap();
        assert_eq!(sys.population(), 119);
        assert!(matches!(
            sys.node_cluster(node),
            Err(NowError::UnknownNode { .. })
        ));
        sys.check_consistency().unwrap();
    }

    #[test]
    fn leave_unknown_node_errors() {
        let mut sys = system(100, 5);
        let ghost = NodeId::from_raw(55_555);
        assert!(matches!(
            sys.leave(ghost),
            Err(NowError::UnknownNode { .. })
        ));
    }

    #[test]
    fn try_join_respects_population_ceiling() {
        // Capacity 16 with default z = 1 → ceiling 16.
        let params = NowParams::for_capacity(16).unwrap();
        let mut sys = NowSystem::init_fast(params, 15, 0.0, 20);
        assert!(sys.try_join(true).is_ok());
        assert!(matches!(
            sys.try_join(true),
            Err(NowError::PopulationCeiling {
                population: 16,
                ceiling: 16
            })
        ));
        // The unchecked join still admits (environment assumption, not
        // protocol enforcement).
        sys.join(true);
        assert_eq!(sys.population(), 17);
    }

    #[test]
    fn widened_ceiling_admits_more() {
        let params = NowParams::for_capacity(16)
            .unwrap()
            .with_population_exponents(2.0, 1.25)
            .unwrap(); // ceiling 16^1.25 = 32
        let mut sys = NowSystem::init_fast(params, 16, 0.0, 21);
        for _ in 0..16 {
            sys.try_join(true).unwrap();
        }
        assert!(matches!(
            sys.try_join(true),
            Err(NowError::PopulationCeiling { .. })
        ));
        assert_eq!(sys.population(), 32);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn leave_respects_population_floor() {
        let params = NowParams::for_capacity(1 << 10).unwrap(); // floor 32
        let mut sys = NowSystem::init_fast(params, 33, 0.0, 6);
        let node = sys.node_ids()[0];
        sys.leave(node).unwrap();
        let node2 = sys.node_ids()[0];
        assert!(matches!(
            sys.leave(node2),
            Err(NowError::PopulationFloor { .. })
        ));
    }

    #[test]
    fn sustained_joins_trigger_splits_and_keep_band() {
        let mut sys = system(100, 7);
        for i in 0..120 {
            sys.join(i % 5 == 0);
        }
        let (_, _, splits, _) = sys.op_counts();
        assert!(splits > 0, "growth must split clusters");
        let max = sys.params().max_cluster_size();
        for c in sys.clusters() {
            assert!(
                c.size() <= max,
                "cluster {} oversize: {} > {max}",
                c.id(),
                c.size()
            );
        }
        sys.check_consistency().unwrap();
    }

    #[test]
    fn sustained_leaves_trigger_merges_and_keep_population() {
        let mut sys = system(220, 8);
        for _ in 0..120 {
            let node = sys.node_ids()[0];
            sys.leave(node).unwrap();
        }
        let (_, _, _, merges) = sys.op_counts();
        assert!(merges > 0, "shrinkage must merge clusters");
        assert_eq!(sys.population(), 100);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn split_halves_roughly_evenly() {
        let mut sys = system(100, 9);
        let c = sys.cluster_ids()[0];
        // Inflate the cluster artificially to force a clean split test.
        let donors: Vec<NodeId> = sys
            .node_ids()
            .into_iter()
            .filter(|&n| sys.node_cluster(n).unwrap() != c)
            .take(25)
            .collect();
        for d in donors {
            sys.move_node(d, c);
        }
        let size = sys.cluster(c).unwrap().size();
        let clusters_before = sys.cluster_count();
        sys.split(c);
        assert_eq!(sys.cluster_count(), clusters_before + 1);
        let new_id = *sys.cluster_ids().last().unwrap();
        let s1 = sys.cluster(c).unwrap().size();
        let s2 = sys.cluster(new_id).unwrap().size();
        assert_eq!(s1 + s2, size);
        assert!(s1.abs_diff(s2) <= 1, "uneven split: {s1} vs {s2}");
        assert!(sys.overlay().degree(new_id) > 0, "new cluster is wired in");
        sys.check_consistency().unwrap();
    }

    #[test]
    fn merge_dissolves_victim_and_rejoins_members() {
        let mut sys = system(200, 10);
        let c = sys.cluster_ids()[0];
        let population = sys.population();
        let clusters_before = sys.cluster_count();
        sys.merge(c);
        // One cluster gone (victim), population preserved (rejoins are
        // internal moves, not departures).
        assert_eq!(sys.cluster_count(), clusters_before - 1);
        assert_eq!(sys.population(), population);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn merge_victim_members_land_in_c() {
        let mut sys = system(200, 11);
        let c = sys.cluster_ids()[0];
        let before_members: BTreeSet<NodeId> = sys.cluster(c).unwrap().members().collect();
        sys.merge(c);
        let after_members: BTreeSet<NodeId> = sys.cluster(c).unwrap().members().collect();
        // Original members were sent off to re-join; the overlap should
        // be small (re-joins may land back in c by chance).
        let kept = before_members.intersection(&after_members).count();
        assert!(
            kept * 2 < before_members.len().max(1),
            "most originals should have re-joined elsewhere (kept {kept})"
        );
    }

    #[test]
    #[should_panic(expected = "cannot merge the last cluster")]
    fn merge_last_cluster_panics() {
        let mut sys = system(20, 12);
        assert_eq!(sys.cluster_count(), 1);
        let c = sys.cluster_ids()[0];
        sys.merge(c);
    }

    #[test]
    fn operation_ledger_kinds_are_populated() {
        let mut sys = system(150, 13);
        sys.join(true);
        let node = sys.node_ids()[0];
        sys.leave(node).unwrap();
        let l = sys.ledger();
        for kind in [
            CostKind::Join,
            CostKind::Leave,
            CostKind::Exchange,
            CostKind::RandCl,
            CostKind::RandNum,
        ] {
            assert!(l.stats(kind).count > 0, "{kind} never recorded");
        }
    }

    #[test]
    fn time_steps_advance_per_external_op() {
        let mut sys = system(150, 14);
        assert_eq!(sys.time_step(), 0);
        sys.join(true);
        assert_eq!(sys.time_step(), 1);
        let node = sys.node_ids()[0];
        sys.leave(node).unwrap();
        assert_eq!(sys.time_step(), 2);
    }
}
