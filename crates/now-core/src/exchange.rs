//! `exchange` — the node-shuffling primitive.
//!
//! From the paper (§3.1): for each node `x` to be exchanged from cluster
//! `C`, a cluster `C'` is chosen at random with `randCl`; `C'` is
//! informed it will receive `x` and picks (via `randNum`) one of its own
//! members `y` to send back in replacement. Neighbors of both clusters
//! learn the new compositions, because the quorum rule requires every
//! receiver to know the exact membership of the sending cluster.
//!
//! Exchanging *all* members of `C` is what resets its composition to a
//! fresh τ-Bernoulli sample (Lemma 1): each incoming `y` is a uniformly
//! random member of a size-biased random cluster — that is, a uniformly
//! random node of the network.
//!
//! The `cascade` flag implements the rule the Theorem 3 proof leans on
//! for `leave`: every cluster that received one of `C`'s (possibly
//! non-uniform) nodes must itself exchange all of its nodes afterwards.

use crate::system::NowSystem;
use now_net::{ClusterId, CostKind};
use std::collections::BTreeSet;

impl NowSystem {
    /// Exchanges every member of `c` with uniformly chosen nodes of the
    /// network (one `randCl` + one `randNum` per member). Returns the
    /// set of partner clusters that received one of `c`'s former
    /// members.
    ///
    /// With `cascade = true`, each partner cluster then exchanges all of
    /// *its* members (non-recursively — partners of partners do not
    /// cascade), matching the `leave` operation's specification.
    ///
    /// Costs land under [`CostKind::Exchange`] (inclusive of the inner
    /// `randCl`/`randNum` invocations; the paper's stated complexity for
    /// one exchange is `O(log⁶N)` messages and `O(log⁴N)` rounds).
    ///
    /// # Panics
    /// Panics if `c` is not a live cluster.
    pub fn exchange_all(&mut self, c: ClusterId, cascade: bool) -> BTreeSet<ClusterId> {
        assert!(
            self.registry.contains_cluster(c),
            "exchange_all: unknown cluster {c}"
        );
        let receivers = self.exchange_single(c);
        if cascade {
            for &partner in &receivers {
                if self.registry.contains_cluster(partner) {
                    self.exchange_single(partner);
                }
            }
        }
        receivers
    }

    /// One full-membership exchange of `c`, no cascade. With the
    /// [`crate::NowParams::with_exchange_cap`] ablation set, only a
    /// uniformly chosen subset of that size is exchanged (the regime
    /// Lemmas 2–3 analyze between full refreshes).
    fn exchange_single(&mut self, c: ClusterId) -> BTreeSet<ClusterId> {
        self.ledger.begin(CostKind::Exchange);
        let mut members = self.cluster_ref(c).member_vec();
        if let Some(cap) = self.params.exchange_cap() {
            if cap < members.len() {
                let picks = now_graph::sample::sample_distinct(members.len(), cap, &mut self.rng);
                members = picks.into_iter().map(|i| members[i]).collect();
            }
        }
        let mut receivers = BTreeSet::new();

        for x in members {
            // `x` may have been swapped out by an earlier iteration only
            // if it was chosen as a partner's replacement — the partner
            // picks from *its* members, so `x` (still in `c`) is safe;
            // guard anyway for robustness.
            if self.node_cluster(x).map(|home| home != c).unwrap_or(true) {
                continue;
            }
            let (partner, _trace) = self.rand_cl_from(c);
            if partner == c {
                continue; // self-exchange is a no-op
            }
            // Partner picks a uniformly random member via randNum; if
            // the partner is compromised, Malice chooses the victim.
            let partner_size = self.cluster_ref(partner).size();
            if partner_size == 0 {
                continue;
            }
            let idx = self.rand_num_in(
                partner,
                partner_size as u64,
                crate::malice::RandNumPurpose::MemberIndex,
            ) as usize;
            let mut y = self
                .cluster_ref(partner)
                .member_at(idx.min(partner_size - 1));
            if !self
                .cluster_ref(partner)
                .rand_num_secure_in(self.params.security())
            {
                let labeled: Vec<(now_net::NodeId, bool)> = self
                    .cluster_ref(partner)
                    .members()
                    // INVARIANT: honesty of ids read from a live member vec in
                    // the same serial phase.
                    .map(|m| (m, self.is_honest(m).expect("live member")))
                    .collect();
                if let Some(forced) = self.malice.exchange_victim(&labeled, &mut self.rng) {
                    if self.cluster_ref(partner).contains(forced) {
                        y = forced;
                    }
                }
            }
            // Swap x ↔ y.
            self.move_node(x, partner);
            self.move_node(y, c);
            receivers.insert(partner);
            // Transfer + view updates inside both clusters: each member
            // of each cluster learns the newcomer (1 round).
            let size_c = self.cluster_ref(c).size() as u64;
            let size_p = self.cluster_ref(partner).size() as u64;
            self.ledger.add_messages(size_c + size_p);
            self.ledger.add_rounds(1);
        }

        // Both `c` and the partners announce their final compositions to
        // their overlay neighbors.
        self.account_neighbor_notification(c);
        for &partner in &receivers {
            self.account_neighbor_notification(partner);
        }
        self.ledger.end();
        receivers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NowParams;
    use now_net::NodeId;
    use std::collections::BTreeSet;

    fn system(n0: usize, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, 0.25, seed)
    }

    #[test]
    fn exchange_preserves_population_and_sizes() {
        let mut sys = system(200, 1);
        let c = sys.cluster_ids()[0];
        let sizes_before: Vec<usize> = sys.clusters().map(|cl| cl.size()).collect();
        let all_before: BTreeSet<NodeId> = sys.node_ids().into_iter().collect();
        sys.exchange_all(c, false);
        let sizes_after: Vec<usize> = sys.clusters().map(|cl| cl.size()).collect();
        let all_after: BTreeSet<NodeId> = sys.node_ids().into_iter().collect();
        assert_eq!(sizes_before, sizes_after, "exchange is size-preserving");
        assert_eq!(all_before, all_after, "no node lost or duplicated");
        sys.check_consistency().unwrap();
    }

    #[test]
    fn exchange_replaces_most_members() {
        let mut sys = system(300, 2);
        let c = sys.cluster_ids()[0];
        let before: BTreeSet<NodeId> = sys.cluster(c).unwrap().members().collect();
        sys.exchange_all(c, false);
        let after: BTreeSet<NodeId> = sys.cluster(c).unwrap().members().collect();
        let kept = before.intersection(&after).count();
        // Self-exchanges keep a ~|C|/n fraction; most members must go.
        assert!(
            kept * 3 < before.len() * 2,
            "only {kept}/{} replaced",
            before.len()
        );
        sys.check_consistency().unwrap();
    }

    #[test]
    fn cascade_reaches_receivers() {
        let mut sys = system(200, 3);
        let c = sys.cluster_ids()[0];
        let receivers = sys.exchange_all(c, true);
        assert!(!receivers.is_empty());
        let s = sys.ledger().stats(CostKind::Exchange);
        // One exchange for c + one per receiver.
        assert_eq!(s.count, 1 + receivers.len() as u64);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn exchange_costs_dominate_their_parts() {
        let mut sys = system(200, 4);
        let c = sys.cluster_ids()[0];
        sys.exchange_all(c, false);
        let ex = sys.ledger().stats(CostKind::Exchange);
        let rc = sys.ledger().stats(CostKind::RandCl);
        assert_eq!(ex.count, 1);
        assert!(
            ex.total_messages >= rc.total_messages,
            "inclusive accounting: exchange ≥ its randCls"
        );
        assert!(rc.count as usize >= sys.cluster(c).unwrap().size() / 2);
    }

    /// Lemma 1's mechanism: a cluster packed with Byzantine nodes
    /// returns to the global corruption rate after one full exchange.
    #[test]
    fn full_exchange_detoxifies_a_polluted_cluster() {
        let mut sys = system(400, 5);
        let victim = sys.cluster_ids()[0];
        // Pollute: move byzantine nodes in until the cluster is ~90% byz.
        let byz_nodes = sys.byz_node_ids();
        let mut moved = 0;
        for b in byz_nodes {
            if sys.node_cluster(b).unwrap() != victim {
                let target_size = sys.cluster(victim).unwrap().size();
                // Swap an honest member out to keep size constant.
                if let Some(h) = sys
                    .cluster(victim)
                    .unwrap()
                    .member_vec()
                    .into_iter()
                    .find(|&m| sys.is_honest(m).unwrap())
                {
                    let other = sys.node_cluster(b).unwrap();
                    sys.move_node(b, victim);
                    sys.move_node(h, other);
                    moved += 1;
                    assert_eq!(sys.cluster(victim).unwrap().size(), target_size);
                }
            }
            if sys.cluster(victim).unwrap().byz_fraction() > 0.85 {
                break;
            }
        }
        assert!(moved > 5);
        let polluted = sys.cluster(victim).unwrap().byz_fraction();
        assert!(polluted > 0.7, "setup failed: {polluted}");

        sys.exchange_all(victim, false);
        let cured = sys.cluster(victim).unwrap().byz_fraction();
        // Global rate is 0.25; the cured cluster should be near it.
        assert!(
            cured < 0.5,
            "exchange failed to detoxify: {polluted} → {cured}"
        );
        sys.check_consistency().unwrap();
    }

    #[test]
    fn exchange_cap_limits_shuffle_volume() {
        let params = NowParams::for_capacity(1 << 10)
            .unwrap()
            .with_exchange_cap(Some(3));
        let mut sys = NowSystem::init_fast(params, 300, 0.25, 8);
        let c = sys.cluster_ids()[0];
        let before: BTreeSet<NodeId> = sys.cluster(c).unwrap().members().collect();
        sys.exchange_all(c, false);
        let after: BTreeSet<NodeId> = sys.cluster(c).unwrap().members().collect();
        let replaced = before.difference(&after).count();
        assert!(replaced <= 3, "cap 3 but {replaced} members were exchanged");
        sys.check_consistency().unwrap();
    }

    #[test]
    fn uncapped_exchange_touches_whole_membership() {
        // Control for the cap test: same system, no cap.
        let mut sys = system(300, 8);
        let c = sys.cluster_ids()[0];
        let size = sys.cluster(c).unwrap().size();
        let before: BTreeSet<NodeId> = sys.cluster(c).unwrap().members().collect();
        sys.exchange_all(c, false);
        let after: BTreeSet<NodeId> = sys.cluster(c).unwrap().members().collect();
        let replaced = before.difference(&after).count();
        assert!(replaced > size / 2);
    }

    #[test]
    #[should_panic(expected = "unknown cluster")]
    fn exchange_unknown_cluster_panics() {
        let mut sys = system(100, 6);
        let ghost = now_net::ClusterId::from_raw(4242);
        let _ = sys.exchange_all(ghost, false);
    }

    #[test]
    fn exchange_on_single_cluster_system_is_noop() {
        let mut sys = system(20, 7);
        assert_eq!(sys.cluster_count(), 1);
        let c = sys.cluster_ids()[0];
        let before: BTreeSet<NodeId> = sys.cluster(c).unwrap().members().collect();
        let receivers = sys.exchange_all(c, true);
        assert!(receivers.is_empty());
        let after: BTreeSet<NodeId> = sys.cluster(c).unwrap().members().collect();
        assert_eq!(before, after);
    }
}
