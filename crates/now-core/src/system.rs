//! [`NowSystem`] — the live NOW deployment.

use crate::audit::SystemAudit;
use crate::cluster::Cluster;
use crate::error::NowError;
use crate::malice::{Malice, NoMalice};
use crate::params::NowParams;
use crate::registry::Registry;
use now_graph::sample::shuffle;
use now_net::{ClusterId, CostKind, DetRng, IdGen, Ledger, NodeId};
use now_over::Overlay;
use rand::Rng;
use std::fmt;

/// The live system: sharded membership registry ([`Registry`]), OVER
/// overlay, message ledger, and deterministic randomness.
///
/// All maintenance operations are methods (`join`, `leave`, and the
/// internally triggered `split`/`merge`/`exchange`); every operation's
/// exact message/round cost lands in the [`Ledger`] under its
/// [`CostKind`].
pub struct NowSystem {
    pub(crate) params: NowParams,
    pub(crate) ids: IdGen,
    pub(crate) registry: Registry,
    pub(crate) overlay: Overlay,
    pub(crate) ledger: Ledger,
    pub(crate) rng: DetRng,
    pub(crate) malice: Box<dyn Malice>,
    pub(crate) time_step: u64,
    pub(crate) join_count: u64,
    pub(crate) leave_count: u64,
    pub(crate) split_count: u64,
    pub(crate) merge_count: u64,
    pub(crate) hub: crate::hub::TraceHub,
}

impl fmt::Debug for NowSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NowSystem")
            .field("population", &self.registry.population())
            .field("clusters", &self.registry.cluster_count())
            .field("time_step", &self.time_step)
            .field("joins", &self.join_count)
            .field("leaves", &self.leave_count)
            .field("splits", &self.split_count)
            .field("merges", &self.merge_count)
            .finish_non_exhaustive()
    }
}

impl NowSystem {
    /// Bootstraps a system of `n0` nodes, a fraction `tau` of which the
    /// adversary corrupts (chosen uniformly — the adversary may also be
    /// given the choice explicitly via [`NowSystem::init_with_corruption`]).
    ///
    /// This is the fast (L1) initialization: it produces the *outcome*
    /// of the paper's initialization phase — a uniformly random
    /// partition into clusters of target size plus a fresh random
    /// overlay — and accounts the phase's costs with the same structure
    /// the genuinely executed path (`crate::init`) exhibits:
    /// discovery ≈ `n·e` message units over `diameter` rounds,
    /// clusterization ≈ committee `randNum` + assignment broadcast.
    ///
    /// # Panics
    /// Panics if `n0 == 0` or `tau ∉ [0, 1)`.
    pub fn init_fast(params: NowParams, n0: usize, tau: f64, seed: u64) -> Self {
        assert!(n0 > 0, "initial population must be positive");
        assert!((0.0..1.0).contains(&tau), "tau must lie in [0,1)");
        let mut rng = DetRng::new(seed);
        let byz_total = (tau * n0 as f64).floor() as usize;
        let mut corrupt = vec![false; n0];
        // Uniformly random corrupted subset.
        let picks = now_graph::sample::sample_distinct(n0, byz_total, &mut rng);
        for i in picks {
            corrupt[i] = true;
        }
        Self::init_with_corruption(params, &corrupt, seed.wrapping_add(1))
    }

    /// Bootstraps with an explicit corruption vector (`corrupt[i]` is
    /// the adversary's choice for the `i`-th initial node) — the paper
    /// lets the adversary pick its τ-fraction at time zero.
    ///
    /// # Panics
    /// Panics if `corrupt` is empty.
    pub fn init_with_corruption(params: NowParams, corrupt: &[bool], seed: u64) -> Self {
        let n0 = corrupt.len();
        assert!(n0 > 0, "initial population must be positive");
        let mut rng = DetRng::new(seed);
        let mut ids = IdGen::new();
        let node_ids: Vec<NodeId> = (0..n0).map(|_| ids.node()).collect();

        // Random permutation, then contiguous blocks — the paper's
        // representative-cluster procedure's outcome.
        let mut order: Vec<usize> = (0..n0).collect();
        shuffle(&mut order, &mut rng);

        let target = params.target_cluster_size();
        let cluster_count = (n0 / target).max(1);
        let mut registry = Registry::new();
        let mut cluster_ids = Vec::with_capacity(cluster_count);
        for _ in 0..cluster_count {
            let cid = ids.cluster();
            registry.create_cluster(cid);
            cluster_ids.push(cid);
        }
        for (pos, &idx) in order.iter().enumerate() {
            // INVARIANT: `pos % cluster_count < cluster_ids.len()` by
            // construction of the id vector above.
            let cid = cluster_ids[pos % cluster_count];
            registry.attach(node_ids[idx], !corrupt[idx], cid);
        }

        let overlay = Overlay::init_random(&cluster_ids, params.over(), &mut rng);

        // Cost accounting for the initialization phase (structure
        // mirrors the L0 path in `crate::init`; see DESIGN.md §5 X-F1).
        let mut ledger = Ledger::new();
        let n = n0 as u64;
        let log_n = ((n0.max(2)) as f64).log2().ceil() as u64;
        let bootstrap_edges = n * log_n / 2;
        ledger.begin(CostKind::Discovery);
        ledger.add_messages(n * bootstrap_edges);
        ledger.add_rounds(log_n + 1);
        ledger.end();
        let c = target as u64;
        ledger.begin(CostKind::Clusterization);
        ledger.add_messages(2 * c * (c - 1).max(1) + c * n + c * c * c);
        ledger.add_rounds(2 + c / 2);
        ledger.end();

        NowSystem {
            params,
            ids,
            registry,
            overlay,
            ledger,
            rng,
            malice: Box::new(NoMalice),
            time_step: 0,
            join_count: 0,
            leave_count: 0,
            split_count: 0,
            merge_count: 0,
            hub: crate::hub::TraceHub::default(),
        }
    }

    /// Replaces the in-protocol adversary hook (see [`Malice`]).
    pub fn set_malice(&mut self, malice: Box<dyn Malice>) {
        self.malice = malice;
    }

    /// Static parameters.
    pub fn params(&self) -> NowParams {
        self.params
    }

    /// Completed time steps (one per external join/leave, or one per
    /// batch — see [`NowSystem::step_parallel`]).
    pub fn time_step(&self) -> u64 {
        self.time_step
    }

    /// Advances the discrete time variable by one step (batched
    /// operations bump it once for the whole batch).
    pub(crate) fn advance_time_step(&mut self) {
        self.time_step += 1;
    }

    /// Current population `n` (O(1): the registry keeps an exact
    /// counter).
    pub fn population(&self) -> u64 {
        self.registry.population()
    }

    /// Number of Byzantine nodes currently in the network (O(1)).
    pub fn byz_population(&self) -> u64 {
        self.registry.byz_population()
    }

    /// The sharded membership registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Number of clusters `#C`.
    pub fn cluster_count(&self) -> usize {
        self.registry.cluster_count()
    }

    /// A cluster by id.
    pub fn cluster(&self, id: ClusterId) -> Option<&Cluster> {
        self.registry.cluster(id)
    }

    /// Iterates clusters in id order.
    pub fn clusters(&self) -> impl Iterator<Item = &Cluster> {
        self.registry.clusters()
    }

    /// Live cluster ids in id order.
    pub fn cluster_ids(&self) -> Vec<ClusterId> {
        self.registry.cluster_ids().to_vec()
    }

    /// The overlay Ĝᴿ.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// The cost ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Mutable ledger access (experiments reset records between phases).
    pub fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.ledger
    }

    /// The cluster a node currently belongs to.
    ///
    /// # Errors
    /// [`NowError::UnknownNode`] if the node is not in the network.
    pub fn node_cluster(&self, node: NodeId) -> Result<ClusterId, NowError> {
        self.registry
            .get(node)
            .map(|r| r.cluster)
            .ok_or(NowError::UnknownNode { node })
    }

    /// Ground-truth honesty of a live node (simulator's view).
    ///
    /// # Errors
    /// [`NowError::UnknownNode`] if the node is not in the network.
    pub fn is_honest(&self, node: NodeId) -> Result<bool, NowError> {
        self.registry
            .get(node)
            .map(|r| r.honest)
            .ok_or(NowError::UnknownNode { node })
    }

    /// All node ids currently in the network, in id order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.registry.node_ids()
    }

    /// Ids of the Byzantine nodes currently in the network (the
    /// full-information adversary knows these; experiments use this to
    /// drive targeted churn).
    pub fn byz_node_ids(&self) -> Vec<NodeId> {
        self.registry.byz_node_ids()
    }

    /// Number of operations of each kind performed so far:
    /// `(joins, leaves, splits, merges)`.
    pub fn op_counts(&self) -> (u64, u64, u64, u64) {
        (
            self.join_count,
            self.leave_count,
            self.split_count,
            self.merge_count,
        )
    }

    /// A uniformly random live cluster — the cluster a joining node
    /// "gets in contact with" when the caller has no preference.
    pub fn contact_cluster(&mut self) -> ClusterId {
        let idx = self.rng.gen_range(0..self.registry.cluster_count());
        self.registry.cluster_id_at(idx)
    }

    /// Measures the system against the paper's invariants (cheap; O(#C)).
    pub fn audit(&self) -> SystemAudit {
        SystemAudit::measure(self)
    }

    // ------------------------------------------------------------------
    // Observability (now-trace).
    // ------------------------------------------------------------------

    /// Turns on the flight recorder with a ring buffer of `capacity`
    /// events. Every execution engine then records typed protocol
    /// events in canonical op order, so two runs that agree on seeds
    /// and inputs produce byte-identical traces at every thread count.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.hub.recorder = Some(now_trace::FlightRecorder::new(capacity));
    }

    /// Turns on the metrics registry. Counters, gauges, and histograms
    /// are populated from protocol outcomes only (never the wall
    /// clock), so exported metrics are part of the deterministic
    /// surface.
    pub fn enable_metrics(&mut self) {
        self.hub.metrics = Some(now_trace::MetricsRegistry::new());
    }

    /// The flight recorder, if tracing is enabled.
    pub fn flight_recorder(&self) -> Option<&now_trace::FlightRecorder> {
        self.hub.recorder.as_ref()
    }

    /// The metrics registry, if metrics are enabled.
    pub fn metrics(&self) -> Option<&now_trace::MetricsRegistry> {
        self.hub.metrics.as_ref()
    }

    /// Records an invariant violation into the observability sinks: a
    /// `violation` trace event, a `now_violations_total` increment, and
    /// — once per recorder — a flight-recorder dump filtered to the
    /// offending cluster's causal neighborhood (the cluster plus its
    /// overlay neighbors). Harnesses (e.g. `now-sim`'s violation
    /// auditor) call this when an audit first observes the violation.
    pub fn record_violation(&mut self, kind: &'static str, cluster: Option<ClusterId>) {
        let step = self.time_step;
        let neighborhood: Vec<u64> = match cluster {
            Some(c) => {
                let mut ids = vec![c.raw()];
                ids.extend(self.overlay.neighbors(c).iter().map(|n| n.raw()));
                ids.sort_unstable();
                ids.dedup();
                ids
            }
            None => Vec::new(),
        };
        self.hub.event(
            step,
            now_trace::TraceData::Violation {
                kind,
                cluster: cluster.map(|c| c.raw()),
            },
        );
        self.hub.count("now_violations_total", 1);
        if let Some(rec) = &mut self.hub.recorder {
            rec.capture_dump(step, kind, cluster.map(|c| c.raw()), &neighborhood);
        }
    }

    /// Measures the overlay against Properties 1–2 (spectral; costlier).
    pub fn overlay_audit(&self) -> now_over::OverlayAudit {
        self.overlay.audit()
    }

    // ------------------------------------------------------------------
    // Internal bookkeeping shared by the operation modules.
    // ------------------------------------------------------------------

    pub(crate) fn cluster_ref(&self, id: ClusterId) -> &Cluster {
        // INVARIANT: internal callers resolve ids from the registry's
        // own live sets within the same serial phase.
        self.registry.cluster(id).expect("cluster must exist")
    }

    /// Moves `node` between clusters, keeping the registry's index,
    /// member sets, and counters in sync.
    pub(crate) fn move_node(&mut self, node: NodeId, to: ClusterId) {
        // INVARIANT: internal callers only move nodes they just read
        // from live member vecs.
        self.registry.move_to(node, to).expect("node must be live");
    }

    /// Inserts a (new or re-joining) node into a cluster.
    pub(crate) fn attach_node(&mut self, node: NodeId, honest: bool, cluster: ClusterId) {
        self.registry.attach(node, honest, cluster);
    }

    /// Removes a node from the network; returns its honesty flag.
    pub(crate) fn detach_node(&mut self, node: NodeId) -> Result<bool, NowError> {
        self.registry
            .detach(node)
            .map(|r| r.honest)
            .ok_or(NowError::UnknownNode { node })
    }

    /// `randNum` within cluster `c` over `0..range`: ideal functionality
    /// with the paper's cost (`2·|C|·(|C|−1)` messages, 2 rounds), with
    /// [`Malice`] steering the output when the cluster is compromised.
    /// `purpose` tells a strategic adversary what the draw decides.
    pub(crate) fn rand_num_in(
        &mut self,
        c: ClusterId,
        range: u64,
        purpose: crate::malice::RandNumPurpose,
    ) -> u64 {
        let range = range.max(1);
        let mode = self.params.security();
        let cluster = self.cluster_ref(c);
        let size = cluster.size() as u64;
        let secure = cluster.rand_num_secure_in(mode);
        self.ledger.begin(CostKind::RandNum);
        self.ledger.add_messages(2 * size * size.saturating_sub(1));
        self.ledger.add_rounds(2);
        self.ledger.end();
        if secure {
            self.rng.gen_range(0..range)
        } else {
            let ctx = crate::malice::RandNumContext {
                cluster: c,
                purpose,
            };
            self.malice.rand_num(range, ctx, &mut self.rng)
        }
    }

    /// Accounts the cost of cluster `c` announcing its new composition
    /// to every member of every neighboring cluster (the view-update
    /// step of exchange/split/merge): `Σ_{D ∈ N(C)} |C|·|D|` messages in
    /// one round.
    pub(crate) fn account_neighbor_notification(&mut self, c: ClusterId) {
        let size = self.cluster_ref(c).size() as u64;
        let mut msgs = 0u64;
        for &nbr in self.overlay.neighbors(c) {
            if let Some(stats) = self.registry.cluster_stats(nbr) {
                msgs += size * stats.size as u64;
            }
        }
        self.ledger.add_messages(msgs);
        self.ledger.add_rounds(1);
    }

    /// **Experiment-only registry surgery**: teleports a node into
    /// `to`, bypassing the protocol. Experiments use this to *construct*
    /// adversarially polluted configurations (e.g. Lemma 1's "cluster at
    /// 70% Byzantine") whose recovery the protocol is then measured on.
    /// Never called by protocol code.
    ///
    /// # Errors
    /// [`NowError::UnknownNode`] / [`NowError::UnknownCluster`] if either
    /// side does not exist.
    pub fn force_move(&mut self, node: NodeId, to: ClusterId) -> Result<(), NowError> {
        if !self.registry.contains(node) {
            return Err(NowError::UnknownNode { node });
        }
        if !self.registry.contains_cluster(to) {
            return Err(NowError::UnknownCluster { cluster: to });
        }
        self.move_node(node, to);
        Ok(())
    }

    /// Public entry point to the cluster-local `randNum` primitive
    /// (ideal functionality; see [`crate::Malice`] for the compromised
    /// path). Used by applications — e.g. the sampling service draws a
    /// uniform member index with it.
    ///
    /// # Panics
    /// Panics if `cluster` is not live.
    pub fn rand_num(&mut self, cluster: ClusterId, range: u64) -> u64 {
        assert!(
            self.registry.contains_cluster(cluster),
            "rand_num: unknown cluster {cluster}"
        );
        self.rand_num_in(cluster, range, crate::malice::RandNumPurpose::Generic)
    }

    /// Deep consistency check used by tests after every operation:
    /// registry shards ↔ clusters ↔ overlay all agree, caches and
    /// counters are exact, and the ledger is span-balanced.
    pub fn check_consistency(&self) -> Result<(), String> {
        self.registry.check_invariants()?;
        for &cid in self.registry.cluster_ids() {
            if !self.overlay.contains(cid) {
                return Err(format!("cluster {cid} missing from overlay"));
            }
        }
        if self.overlay.vertex_count() != self.registry.cluster_count() {
            return Err(format!(
                "overlay has {} vertices but {} clusters exist",
                self.overlay.vertex_count(),
                self.registry.cluster_count()
            ));
        }
        if !self.ledger.is_balanced() {
            return Err("ledger has dangling spans".to_string());
        }
        self.overlay.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, 80, 0.2, seed)
    }

    #[test]
    fn init_fast_produces_consistent_system() {
        let sys = small_system(1);
        sys.check_consistency().unwrap();
        assert_eq!(sys.population(), 80);
        assert_eq!(sys.byz_population(), 16);
        // target size 20 → 4 clusters of 20.
        assert_eq!(sys.cluster_count(), 4);
        for c in sys.clusters() {
            assert_eq!(c.size(), 20);
        }
    }

    #[test]
    fn init_accounts_discovery_and_clusterization() {
        let sys = small_system(2);
        let d = sys.ledger().stats(CostKind::Discovery);
        let c = sys.ledger().stats(CostKind::Clusterization);
        assert_eq!(d.count, 1);
        assert!(d.total_messages > 0);
        assert_eq!(c.count, 1);
        assert!(c.total_messages > 0);
    }

    #[test]
    fn init_with_explicit_corruption_respects_choice() {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let mut corrupt = vec![false; 60];
        for flag in corrupt.iter_mut().take(10) {
            *flag = true;
        }
        let sys = NowSystem::init_with_corruption(params, &corrupt, 3);
        assert_eq!(sys.byz_population(), 10);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = small_system(7);
        let b = small_system(7);
        assert_eq!(a.node_ids(), b.node_ids());
        assert_eq!(a.cluster_ids(), b.cluster_ids());
        for id in a.cluster_ids() {
            assert_eq!(
                a.cluster(id).unwrap().member_slice(),
                b.cluster(id).unwrap().member_slice()
            );
        }
    }

    #[test]
    fn corruption_is_spread_not_concentrated() {
        // Random partition ⇒ no cluster should be byz-majority at init
        // for τ = 0.2 at these sizes (deterministic given the seed).
        let sys = small_system(4);
        for c in sys.clusters() {
            assert!(
                c.byz_fraction() < 0.5,
                "cluster {} starts at {}",
                c.id(),
                c.byz_fraction()
            );
        }
    }

    #[test]
    fn move_node_keeps_caches_exact() {
        let mut sys = small_system(5);
        let ids = sys.cluster_ids();
        let (a, b) = (ids[0], ids[1]);
        let node = sys.cluster(a).unwrap().member_at(0);
        sys.move_node(node, b);
        assert_eq!(sys.node_cluster(node).unwrap(), b);
        sys.check_consistency().unwrap();
        // Moving to the same cluster is a no-op.
        sys.move_node(node, b);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn detach_then_attach_roundtrip() {
        let mut sys = small_system(6);
        let node = sys.node_ids()[0];
        let home = sys.node_cluster(node).unwrap();
        let honest = sys.is_honest(node).unwrap();
        assert_eq!(sys.detach_node(node).unwrap(), honest);
        assert!(matches!(
            sys.node_cluster(node),
            Err(NowError::UnknownNode { .. })
        ));
        sys.attach_node(node, honest, home);
        assert_eq!(sys.node_cluster(node).unwrap(), home);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn rand_num_in_is_in_range_and_accounted() {
        let mut sys = small_system(8);
        let c = sys.cluster_ids()[0];
        let before = sys.ledger().stats(CostKind::RandNum);
        for _ in 0..32 {
            let v = sys.rand_num_in(c, 17, crate::malice::RandNumPurpose::Generic);
            assert!(v < 17);
        }
        let after = sys.ledger().stats(CostKind::RandNum);
        assert_eq!(after.count - before.count, 32);
        let size = sys.cluster(c).unwrap().size() as u64;
        assert_eq!(after.max_messages, 2 * size * (size - 1));
    }

    #[test]
    fn contact_cluster_is_live() {
        let mut sys = small_system(9);
        for _ in 0..10 {
            let c = sys.contact_cluster();
            assert!(sys.cluster(c).is_some());
        }
    }

    #[test]
    fn unknown_node_errors() {
        let sys = small_system(10);
        let ghost = NodeId::from_raw(10_000);
        assert!(matches!(
            sys.node_cluster(ghost),
            Err(NowError::UnknownNode { .. })
        ));
        assert!(matches!(
            sys.is_honest(ghost),
            Err(NowError::UnknownNode { .. })
        ));
    }

    #[test]
    fn debug_output_is_informative() {
        let sys = small_system(11);
        let dbg = format!("{sys:?}");
        assert!(dbg.contains("population"));
        assert!(dbg.contains("clusters"));
    }
}
