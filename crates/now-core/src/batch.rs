//! Parallel join/leave batches and the conflict-free wave scheduler.
//!
//! The paper's model processes one join or leave per time step "for
//! simplicity of presentation", with the footnote (§2): *"However, the
//! analysis can be generalized to several parallel join and leave
//! operations."* This module implements that generalization: a batch of
//! arrivals and departures executed within a **single** time step,
//! scheduled into **conflict-free waves**.
//!
//! # Footprints and waves
//!
//! Each operation is assigned a *cluster footprint* before it runs: the
//! cluster it coordinates through (the joiner's contact cluster, the
//! leaver's home cluster) plus that cluster's overlay neighborhood —
//! the clusters that receive view updates and are the candidate
//! split/merge/exchange counterparties of the operation's first
//! coordination round. Two operations with intersecting footprints
//! contend for the same clusters' quorums and must be serialized; two
//! operations with disjoint footprints can run concurrently.
//!
//! The scheduler partitions the batch into waves by scanning it in
//! canonical order (departures before arrivals — failure detection of
//! the step's leavers precedes the admission of its joiners — each in
//! input order) and opening a new wave whenever an operation's
//! footprint intersects the current wave's. Waves therefore form
//! contiguous segments of the canonical order, every wave's operations
//! are pairwise footprint-disjoint, and executing the waves in order is
//! *identical* to executing the operations serially — which is what
//! makes the batch deterministic: same seed ⇒ same admitted ids, same
//! ledger totals. Message costs are schedule-invariant by construction
//! (parallelism saves time, not traffic).
//!
//! The round complexity of the batched step is derived from the
//! schedule: each wave costs the *maximum* round count over its
//! operations (they proceed in lockstep; the slowest determines the
//! wave's duration), and the step costs the sum over waves —
//! [`BatchReport::rounds_parallel`]. The serial baseline is the plain
//! sum, [`BatchReport::cost`]`.rounds`.
//!
//! # Model choice and limitation
//!
//! The footprint is the operation's *admission-time coordination
//! domain*, not a superset of every cluster the full operation can
//! touch: a join's `randCl` walk relays across the whole overlay and
//! lands on a host anywhere, and an exchange relocates members into
//! walk-chosen clusters. The paper's footnote gives no construction for
//! the parallel case, so this module models walk relays and exchange
//! traffic as quorum-layer message passing that composes across waves
//! (their rounds are already accounted per operation), and reserves
//! *conflict* for contention on the entry cluster's quorum
//! neighborhood. The simulator executes waves in canonical order, so
//! none of the reported outcome metrics depend on this choice — only
//! the `rounds_parallel` estimate does, and `x_batch_parallel` reports
//! the wave structure alongside it so the estimate is inspectable.

use crate::error::NowError;
use crate::system::NowSystem;
use now_net::{ClusterId, Cost, CostKind, EventRecord, NodeId};
use std::collections::BTreeSet;

/// One arrival of a batched step: the adversary's corruption decision
/// plus an optional steered contact cluster.
///
/// The paper's adversary controls its own nodes' contact choice (the
/// §3.3 join–leave attack depends on it), so batched attack drivers
/// need the same lever the serial [`NowSystem::join_via`] provides. A
/// `contact` of `None` draws a uniformly random live cluster, exactly
/// like [`NowSystem::join`]; a stale contact (the cluster merged away
/// between decision and execution) degrades to the uniform draw rather
/// than aborting the batch, mirroring the serial runner's behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinSpec {
    /// Whether the arrival is honest (the corruption decision).
    pub honest: bool,
    /// Contact cluster, if the adversary steers it.
    pub contact: Option<ClusterId>,
}

impl JoinSpec {
    /// An arrival contacting a uniformly random cluster.
    pub fn uniform(honest: bool) -> Self {
        JoinSpec {
            honest,
            contact: None,
        }
    }

    /// An arrival steered at a specific contact cluster.
    pub fn via(contact: ClusterId, honest: bool) -> Self {
        JoinSpec {
            honest,
            contact: Some(contact),
        }
    }
}

/// Aggregate of one conflict-free wave of a batched step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaveStats {
    /// Operations executed in this wave (pairwise footprint-disjoint).
    pub ops: usize,
    /// Round count of the wave: the maximum over its operations.
    pub rounds_max: u64,
    /// Serial round sum over the wave's operations.
    pub rounds_total: u64,
    /// Message units spent by the wave's operations.
    pub messages: u64,
}

/// Outcome of one batched time step ([`NowSystem::step_parallel`]).
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Ids assigned to the batch's admitted joiners, in input order.
    pub joined: Vec<NodeId>,
    /// Departures that completed.
    pub left: Vec<NodeId>,
    /// Departures that were refused, with the reason (unknown node,
    /// population floor). Rejected operations cost nothing and occupy
    /// no wave slot.
    pub rejected: Vec<(NodeId, NowError)>,
    /// Inclusive batch cost; `rounds` is the *serial* sum.
    pub cost: Cost,
    /// Round complexity of the scheduled parallel execution: the sum
    /// over waves of each wave's maximum operation round count.
    pub rounds_parallel: u64,
    /// The conflict-free wave schedule, in execution order.
    pub waves: Vec<WaveStats>,
    /// Steered contacts ([`JoinSpec::via`]) that had been dissolved —
    /// before the batch, or (threaded engine) by an earlier wave's
    /// merge — and degraded to the uniform redraw. Deterministic per
    /// engine; every engine applies the same uniform-over-all-clusters
    /// rule the serial [`NowSystem::join`] path uses.
    pub contact_redraws: u64,
    /// Operations whose triggering message the event network dropped
    /// (loss or partition). Always zero outside
    /// [`crate::ExecConfig::Event`]; a dropped operation is admitted
    /// but not executed this step.
    pub dropped: u64,
    /// The delivery trace of the event engine, in delivery order (drops
    /// first, stamped at send time). Empty outside
    /// [`crate::ExecConfig::Event`]. Part of the deterministic replay
    /// surface: same `(seed, config)` ⇒ byte-identical trace.
    pub events: Vec<EventRecord>,
    /// Wall-clock nanoseconds the batch took to execute on this host.
    /// The only field that legitimately varies between bit-identical
    /// runs — determinism tests and report diffs must ignore it.
    pub wall_nanos: u64,
}

impl BatchReport {
    /// Number of conflict-free waves the batch was scheduled into.
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }

    /// Width of the widest wave: 1 means the batch fully serialized
    /// (every scheduled operation ran in its own wave), ≥ 2 means some
    /// operations ran concurrently, and 0 means the schedule is empty —
    /// nothing was scheduled, so no degree of serialization exists to
    /// report.
    pub fn max_wave_width(&self) -> usize {
        self.waves.iter().map(|w| w.ops).max().unwrap_or(0)
    }

    /// Total round *slack* in the schedule: the sum over waves of
    /// `rounds_total − rounds_max`, i.e. the serial rounds the wave
    /// structure saves. Zero iff the batch fully serialized (or was
    /// empty); equal to `cost.rounds − rounds_parallel` whenever all
    /// batch rounds were accounted through scheduled operations.
    pub fn wave_slack_rounds(&self) -> u64 {
        self.waves
            .iter()
            .map(|w| w.rounds_total - w.rounds_max)
            .sum()
    }

    /// Rounds saved by executing the batch wave-parallel rather than
    /// serially.
    ///
    /// Degenerate cases are reported honestly: a batch with no
    /// scheduled work on both sides is a 1.0 (nothing to speed up),
    /// while serial rounds without any parallel rounds — possible only
    /// if costs were accounted outside the schedule — report the full
    /// serial count rather than pretending parity.
    pub fn parallel_speedup(&self) -> f64 {
        match (self.cost.rounds, self.rounds_parallel) {
            (0, 0) => 1.0,
            (serial, 0) => serial as f64,
            (serial, parallel) => serial as f64 / parallel as f64,
        }
    }
}

/// Order-preserving greedy wave scheduler: operations arrive in
/// canonical batch order with a pre-computed footprint; a new wave opens
/// whenever the incoming footprint intersects the current wave's union.
struct WaveScheduler {
    waves: Vec<WaveStats>,
    current: WaveStats,
    current_footprint: BTreeSet<ClusterId>,
}

impl WaveScheduler {
    fn new() -> Self {
        WaveScheduler {
            waves: Vec::new(),
            current: WaveStats::default(),
            current_footprint: BTreeSet::new(),
        }
    }

    /// Places one executed operation (footprint computed *before* it
    /// ran, cost measured while it ran) into the schedule.
    fn place(&mut self, footprint: &[ClusterId], rounds: u64, messages: u64) {
        let conflicts =
            self.current.ops > 0 && footprint.iter().any(|c| self.current_footprint.contains(c));
        if conflicts {
            self.waves.push(self.current);
            self.current = WaveStats::default();
            self.current_footprint.clear();
        }
        self.current.ops += 1;
        self.current.rounds_max = self.current.rounds_max.max(rounds);
        self.current.rounds_total += rounds;
        self.current.messages += messages;
        self.current_footprint.extend(footprint.iter().copied());
    }

    /// Closes the schedule: the waves plus the derived parallel round
    /// count (Σ over waves of the wave's max).
    fn finish(mut self) -> (Vec<WaveStats>, u64) {
        if self.current.ops > 0 {
            self.waves.push(self.current);
        }
        let rounds = self.waves.iter().map(|w| w.rounds_max).sum();
        (self.waves, rounds)
    }
}

impl NowSystem {
    /// Resolves one arrival's contact cluster at batch admission,
    /// returning `(contact, redrawn)`: a live steered contact is
    /// honored; a dissolved one **degrades to the uniform draw** — the
    /// same rule the serial [`NowSystem::join`] path applies — and is
    /// counted as a redraw ([`BatchReport::contact_redraws`]). Shared
    /// by the scheduled and threaded engines so the rule cannot drift
    /// per site.
    pub(crate) fn resolve_batch_contact(&mut self, spec: JoinSpec) -> (ClusterId, bool) {
        match spec.contact {
            Some(c) if self.cluster(c).is_some() => (c, false),
            Some(_) => (self.contact_cluster(), true),
            None => (self.contact_cluster(), false),
        }
    }

    /// The cluster footprint of a maintenance operation coordinating
    /// through `center`: the cluster itself plus its current overlay
    /// neighborhood (view updates, split/merge/exchange candidates of
    /// the first coordination round).
    pub fn op_footprint(&self, center: ClusterId) -> Vec<ClusterId> {
        let nbrs = self.overlay().neighbors(center);
        let mut fp = Vec::with_capacity(nbrs.len() + 1);
        fp.extend_from_slice(nbrs);
        fp.push(center);
        fp
    }

    /// Executes a batch of departures and arrivals as **one** time step
    /// (the paper footnote's "several parallel join and leave
    /// operations"), scheduled into conflict-free waves (module docs).
    ///
    /// `leaves` are processed first, then one join per entry of
    /// `join_honesty` (the flag is the adversary's corruption decision
    /// for that arrival; each joiner contacts a uniformly drawn
    /// cluster). A departure that fails (unknown node — e.g. listed
    /// twice — or the `N^{1/y}` population floor) is reported in
    /// [`BatchReport::rejected`] and does not abort the rest of the
    /// batch.
    ///
    /// The whole batch lands in the ledger under [`CostKind::Batch`]
    /// (with the usual per-operation spans nested inside it); the
    /// report carries the wave schedule and the derived parallel round
    /// count alongside.
    #[deprecated(note = "use `NowSystem::step_batch` with `ExecConfig::serial`")]
    pub fn step_parallel(&mut self, join_honesty: &[bool], leaves: &[NodeId]) -> BatchReport {
        self.step_batch(
            &crate::exec::BatchInput::from_flags(join_honesty, leaves),
            &crate::exec::ExecConfig::serial(),
        )
    }

    /// [`NowSystem::step_parallel`] with per-arrival contact steering:
    /// each [`JoinSpec`] may pin its contact cluster (the batched
    /// analogue of [`NowSystem::join_via`]), which the attack drivers
    /// (join–leave flood, split forcing) require. Stale contacts
    /// degrade to the uniform draw (see [`JoinSpec`]).
    #[deprecated(note = "use `NowSystem::step_batch` with `ExecConfig::serial`")]
    pub fn step_parallel_specs(&mut self, joins: &[JoinSpec], leaves: &[NodeId]) -> BatchReport {
        self.step_batch(
            &crate::exec::BatchInput::from_specs(joins, leaves),
            &crate::exec::ExecConfig::serial(),
        )
    }

    /// The serial engine ([`crate::ExecConfig::Serial`]): operations
    /// run one after another off the system's shared randomness stream,
    /// exactly like a sequence of [`NowSystem::join`] /
    /// [`NowSystem::leave`] calls folded into one ledger span and one
    /// time step. The wave schedule is *derived* (measured costs placed
    /// by the greedy scheduler), not executed.
    pub(crate) fn step_serial_impl(
        &mut self,
        joins: &[JoinSpec],
        leaves: &[NodeId],
    ) -> BatchReport {
        // Wall-clock measurement only: feeds `wall_nanos`, which is
        // excluded from byte-diffed reports.
        let start = now_trace::stopwatch();
        self.ledger_mut().begin(CostKind::Batch);
        let step = self.time_step;
        let mut canon = 0u64;
        let mut joined = Vec::with_capacity(joins.len());
        let mut left = Vec::with_capacity(leaves.len());
        let mut rejected = Vec::new();
        let mut sched = WaveScheduler::new();

        for &node in leaves {
            // Footprint from the pre-operation state (read-only; a
            // rejected leave has none and is never scheduled).
            let footprint = self
                .node_cluster(node)
                .ok()
                .map(|home| self.op_footprint(home));
            let before = self.ledger().total();
            match self.leave_inner(node) {
                Ok(()) => {
                    left.push(node);
                    let after = self.ledger().total();
                    sched.place(
                        // INVARIANT: an admitted leave resolved its footprint
                        // during admission, in the same serial phase.
                        &footprint.expect("admitted leave has a live home cluster"),
                        after.rounds - before.rounds,
                        after.messages - before.messages,
                    );
                    let data = now_trace::TraceData::OpApplied {
                        canon,
                        join: false,
                        node: node.raw(),
                    };
                    self.hub.event(step, data);
                    canon += 1;
                }
                Err(e) => {
                    self.hub
                        .event(step, now_trace::TraceData::OpRejected { node: node.raw() });
                    rejected.push((node, e));
                }
            }
        }
        let mut contact_redraws = 0u64;
        for &spec in joins {
            // Contact resolution happens immediately before the op
            // runs, so a contact dissolved by an earlier op of this
            // very batch also degrades here.
            let (contact, redrawn) = self.resolve_batch_contact(spec);
            contact_redraws += u64::from(redrawn);
            let footprint = self.op_footprint(contact);
            let before = self.ledger().total();
            let node = self.join_inner(contact, spec.honest);
            joined.push(node);
            let after = self.ledger().total();
            sched.place(
                &footprint,
                after.rounds - before.rounds,
                after.messages - before.messages,
            );
            let data = now_trace::TraceData::OpApplied {
                canon,
                join: true,
                node: node.raw(),
            };
            self.hub.event(step, data);
            canon += 1;
        }
        if contact_redraws > 0 {
            self.hub.event(
                step,
                now_trace::TraceData::ContactRedraws {
                    count: contact_redraws,
                },
            );
        }

        let (waves, rounds_parallel) = sched.finish();
        let cost = self.ledger_mut().end();
        self.advance_time_step();
        BatchReport {
            joined,
            left,
            rejected,
            cost,
            rounds_parallel,
            waves,
            contact_redraws,
            dropped: 0,
            events: Vec::new(),
            wall_nanos: start.elapsed_nanos(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{BatchInput, ExecConfig};
    use crate::params::NowParams;
    use now_net::NodeId;

    fn system(n0: usize, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, 0.2, seed)
    }

    /// A system whose overlay is sparse relative to its cluster count,
    /// so pairwise-disjoint footprints exist (capacity 16 ⇒ overlay
    /// target degree 5, but 64 clusters).
    fn sparse_system(seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(16).unwrap();
        let n0 = 64 * params.target_cluster_size();
        NowSystem::init_fast(params, n0, 0.1, seed)
    }

    /// Greedily collects clusters with pairwise-disjoint footprints.
    fn disjoint_footprint_clusters(sys: &NowSystem, want: usize) -> Vec<now_net::ClusterId> {
        let mut picked = Vec::new();
        let mut covered: std::collections::BTreeSet<now_net::ClusterId> =
            std::collections::BTreeSet::new();
        for c in sys.cluster_ids() {
            let fp = sys.op_footprint(c);
            if fp.iter().any(|x| covered.contains(x)) {
                continue;
            }
            covered.extend(fp);
            picked.push(c);
            if picked.len() == want {
                break;
            }
        }
        picked
    }

    #[test]
    fn batch_of_joins_is_one_time_step() {
        let mut sys = system(120, 1);
        let before = sys.population();
        let t0 = sys.time_step();
        let report = sys.step_batch(
            &BatchInput::from_flags(&[true, true, false, true], &[]),
            &ExecConfig::serial(),
        );
        assert_eq!(report.joined.len(), 4);
        assert!(report.left.is_empty());
        assert!(report.rejected.is_empty());
        assert_eq!(sys.population(), before + 4);
        assert_eq!(sys.time_step(), t0 + 1, "one step for the whole batch");
        sys.check_consistency().unwrap();
    }

    #[test]
    fn mixed_batch_nets_out() {
        let mut sys = system(150, 2);
        let leavers: Vec<NodeId> = sys.node_ids().into_iter().take(3).collect();
        let before = sys.population();
        let report = sys.step_batch(
            &BatchInput::from_flags(&[true, true], &leavers),
            &ExecConfig::serial(),
        );
        assert_eq!(report.left.len(), 3);
        assert_eq!(report.joined.len(), 2);
        assert_eq!(sys.population(), before - 1);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn duplicate_leave_is_rejected_not_fatal() {
        let mut sys = system(150, 3);
        let victim = sys.node_ids()[0];
        let report = sys.step_batch(
            &BatchInput::from_flags(&[], &[victim, victim]),
            &ExecConfig::serial(),
        );
        assert_eq!(report.left, vec![victim]);
        assert_eq!(report.rejected.len(), 1);
        assert!(matches!(report.rejected[0].1, NowError::UnknownNode { .. }));
        sys.check_consistency().unwrap();
    }

    #[test]
    fn floor_rejections_are_reported() {
        let params = NowParams::for_capacity(1 << 10).unwrap(); // floor 32
        let mut sys = NowSystem::init_fast(params, 33, 0.0, 4);
        let leavers: Vec<NodeId> = sys.node_ids().into_iter().take(3).collect();
        let report = sys.step_batch(
            &BatchInput::from_flags(&[], &leavers),
            &ExecConfig::serial(),
        );
        assert_eq!(report.left.len(), 1, "only one leave fits above the floor");
        assert_eq!(report.rejected.len(), 2);
        assert!(report
            .rejected
            .iter()
            .all(|(_, e)| matches!(e, NowError::PopulationFloor { .. })));
        // Rejected operations never enter the schedule.
        assert_eq!(report.waves.iter().map(|w| w.ops).sum::<usize>(), 1);
    }

    /// Acceptance headline: operations with pairwise-disjoint footprints
    /// complete in a single wave whose round count is the max over the
    /// operations; forcing a conflict splits the schedule.
    #[test]
    fn disjoint_footprints_complete_in_one_wave() {
        let mut sys = sparse_system(5);
        let homes = disjoint_footprint_clusters(&sys, 3);
        assert!(
            homes.len() == 3,
            "sparse overlay should admit 3 disjoint footprints, found {}",
            homes.len()
        );
        let leavers: Vec<NodeId> = homes
            .iter()
            .map(|&c| sys.cluster(c).unwrap().member_at(0))
            .collect();
        let report = sys.step_batch(
            &BatchInput::from_flags(&[], &leavers),
            &ExecConfig::serial(),
        );
        assert_eq!(report.left.len(), 3);
        assert_eq!(report.wave_count(), 1, "disjoint batch must not serialize");
        assert_eq!(report.max_wave_width(), 3);
        let wave = &report.waves[0];
        assert_eq!(
            report.rounds_parallel, wave.rounds_max,
            "one wave ⇒ parallel rounds = max over its ops"
        );
        assert!(report.rounds_parallel < report.cost.rounds);
        assert!(report.parallel_speedup() > 1.0);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn conflicting_footprints_take_extra_waves() {
        // A capacity-2¹⁰ system with 10 clusters has overlay degree ≥ 9
        // (target degree 13 saturates): every footprint covers the whole
        // overlay, so any two operations conflict.
        let mut sys = system(200, 6);
        let leavers: Vec<NodeId> = sys.node_ids().into_iter().take(2).collect();
        let report = sys.step_batch(
            &BatchInput::from_flags(&[], &leavers),
            &ExecConfig::serial(),
        );
        assert_eq!(report.left.len(), 2);
        assert_eq!(report.wave_count(), 2, "overlapping ops must serialize");
        assert_eq!(
            report.rounds_parallel,
            report.waves.iter().map(|w| w.rounds_max).sum::<u64>()
        );
        sys.check_consistency().unwrap();
    }

    /// Same seed, same batch: the scheduled execution and the serial
    /// one-at-a-time execution agree on population, admitted ids, and
    /// total message cost (message costs are schedule-invariant).
    #[test]
    fn batched_execution_matches_serial_exactly() {
        let mut batched = system(160, 8);
        let mut serial = system(160, 8);
        let leavers: Vec<NodeId> = batched.node_ids().into_iter().take(4).collect();
        let joins = [true, false, true];

        let report = batched.step_batch(
            &BatchInput::from_flags(&joins, &leavers),
            &ExecConfig::serial(),
        );
        let mut serial_joined = Vec::new();
        for &n in &leavers {
            serial.leave(n).unwrap();
        }
        for &honest in &joins {
            serial_joined.push(serial.join(honest));
        }

        assert_eq!(batched.population(), serial.population());
        assert_eq!(batched.byz_population(), serial.byz_population());
        assert_eq!(report.joined, serial_joined, "identical admitted ids");
        assert_eq!(
            batched.ledger().total().messages,
            serial.ledger().total().messages,
            "message costs are schedule-invariant"
        );
        assert_eq!(batched.node_ids(), serial.node_ids());
        // Batch took 1 step; serial took 7.
        assert_eq!(batched.time_step() + 6, serial.time_step());
    }

    #[test]
    fn wave_stats_cover_the_whole_batch() {
        let mut sys = system(200, 5);
        let leavers: Vec<NodeId> = sys.node_ids().into_iter().take(2).collect();
        let report = sys.step_batch(
            &BatchInput::from_flags(&[true, true, true], &leavers),
            &ExecConfig::serial(),
        );
        assert_eq!(report.waves.iter().map(|w| w.ops).sum::<usize>(), 5);
        assert_eq!(
            report.waves.iter().map(|w| w.rounds_total).sum::<u64>(),
            report.cost.rounds,
            "wave serial sums partition the batch's serial rounds"
        );
        assert_eq!(
            report.waves.iter().map(|w| w.messages).sum::<u64>(),
            report.cost.messages
        );
        assert!(report.rounds_parallel <= report.cost.rounds);
        assert!(report.rounds_parallel >= report.waves.iter().map(|w| w.rounds_max).max().unwrap());
    }

    #[test]
    fn empty_batch_still_advances_time() {
        // "At each time step … or nothing occurs."
        let mut sys = system(100, 6);
        let t0 = sys.time_step();
        let report = sys.step_batch(&BatchInput::from_flags(&[], &[]), &ExecConfig::serial());
        assert_eq!(sys.time_step(), t0 + 1);
        assert_eq!(report.cost, Cost::ZERO);
        assert_eq!(report.rounds_parallel, 0);
        assert_eq!(report.wave_count(), 0);
        assert_eq!(report.max_wave_width(), 0);
        assert_eq!(report.parallel_speedup(), 1.0);
    }

    #[test]
    fn speedup_edge_case_reports_honest_ratio() {
        // Regression: a report with serial rounds but an empty schedule
        // must not claim parity.
        let report = BatchReport {
            joined: vec![],
            left: vec![],
            rejected: vec![],
            cost: Cost {
                messages: 10,
                rounds: 7,
            },
            rounds_parallel: 0,
            waves: vec![],
            contact_redraws: 0,
            dropped: 0,
            events: vec![],
            wall_nanos: 0,
        };
        assert_eq!(report.parallel_speedup(), 7.0);
        let balanced = BatchReport {
            cost: Cost {
                messages: 0,
                rounds: 0,
            },
            ..report
        };
        assert_eq!(balanced.parallel_speedup(), 1.0);
    }

    /// Regression for the `max_wave_width` doc/value mismatch: an empty
    /// schedule reports width 0 ("nothing scheduled"), distinct from
    /// width 1 ("fully serialized").
    #[test]
    fn max_wave_width_distinguishes_empty_from_serialized() {
        let mut empty = system(100, 20);
        let report = empty.step_batch(&BatchInput::from_flags(&[], &[]), &ExecConfig::serial());
        assert_eq!(report.max_wave_width(), 0, "empty schedule");
        assert_eq!(report.wave_slack_rounds(), 0);

        // A fully serialized batch on a dense overlay reports width 1.
        let mut dense = system(200, 21);
        let leavers: Vec<NodeId> = dense.node_ids().into_iter().take(2).collect();
        let serialized = dense.step_batch(
            &BatchInput::from_flags(&[], &leavers),
            &ExecConfig::serial(),
        );
        assert_eq!(serialized.max_wave_width(), 1, "fully serialized");
        assert_eq!(
            serialized.wave_slack_rounds(),
            0,
            "width-1 waves have no serial-vs-max slack"
        );
    }

    #[test]
    fn wave_slack_accounts_saved_rounds() {
        let mut sys = sparse_system(22);
        let homes = disjoint_footprint_clusters(&sys, 3);
        let leavers: Vec<NodeId> = homes
            .iter()
            .map(|&c| sys.cluster(c).unwrap().member_at(0))
            .collect();
        let report = sys.step_batch(
            &BatchInput::from_flags(&[], &leavers),
            &ExecConfig::serial(),
        );
        assert_eq!(report.wave_count(), 1);
        assert_eq!(
            report.wave_slack_rounds(),
            report.cost.rounds - report.rounds_parallel,
            "all rounds flow through scheduled ops, so slack = serial − parallel"
        );
        assert!(report.wave_slack_rounds() > 0);
    }

    #[test]
    fn batch_lands_under_batch_cost_kind() {
        let mut sys = system(150, 7);
        sys.step_batch(&BatchInput::from_flags(&[true], &[]), &ExecConfig::serial());
        let s = sys.ledger().stats(CostKind::Batch);
        assert_eq!(s.count, 1);
        assert!(s.total_messages > 0);
        // The nested join is still individually accounted.
        assert!(sys.ledger().stats(CostKind::Join).count >= 1);
    }

    #[test]
    fn sustained_batches_keep_invariants() {
        let mut sys = system(200, 9);
        for round in 0..30 {
            let leavers: Vec<NodeId> = sys.node_ids().into_iter().take(2).collect();
            let joins = [round % 3 != 0, true];
            sys.step_batch(
                &BatchInput::from_flags(&joins, &leavers),
                &ExecConfig::serial(),
            );
        }
        sys.check_consistency().unwrap();
        let audit = sys.audit();
        assert!(audit.size_bounds_ok);
    }
}
