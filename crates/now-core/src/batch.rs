//! Parallel join/leave batches.
//!
//! The paper's model processes one join or leave per time step "for
//! simplicity of presentation", with the footnote: *"However, the
//! analysis can be generalized to several parallel join and leave
//! operations."* This module implements that generalization: a batch of
//! arrivals and departures executed within a **single** time step.
//!
//! Execution model: departures are processed before arrivals (failure
//! detection of the step's leavers precedes the admission of its
//! joiners), and the operations of the batch run on disjoint clusters
//! *in parallel* in the intended deployment. The simulator sequences
//! them deterministically, but reports two round counts:
//!
//! * the **serial** sum (what a one-at-a-time execution would cost), and
//! * the **parallel** maximum over the batch's operations — the round
//!   complexity of the concurrent execution the footnote appeals to
//!   (operations of a batch proceed in lockstep; the slowest one
//!   determines the step's duration).
//!
//! Message costs are identical in both models (parallelism saves time,
//! not traffic).

use crate::error::NowError;
use crate::system::NowSystem;
use now_net::{Cost, CostKind, NodeId};

/// Outcome of one batched time step ([`NowSystem::step_parallel`]).
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Ids assigned to the batch's admitted joiners, in input order.
    pub joined: Vec<NodeId>,
    /// Departures that completed.
    pub left: Vec<NodeId>,
    /// Departures that were refused, with the reason (unknown node,
    /// population floor).
    pub rejected: Vec<(NodeId, NowError)>,
    /// Inclusive batch cost; `rounds` is the *serial* sum.
    pub cost: Cost,
    /// Round complexity of the parallel execution: the maximum inclusive
    /// round count over the batch's operations.
    pub rounds_parallel: u64,
}

impl BatchReport {
    /// Rounds saved by executing the batch in parallel rather than
    /// serially.
    pub fn parallel_speedup(&self) -> f64 {
        if self.rounds_parallel == 0 {
            1.0
        } else {
            self.cost.rounds as f64 / self.rounds_parallel as f64
        }
    }
}

impl NowSystem {
    /// Executes a batch of departures and arrivals as **one** time step
    /// (the paper footnote's "several parallel join and leave
    /// operations").
    ///
    /// `leaves` are processed first, then one join per entry of
    /// `join_honesty` (the flag is the adversary's corruption decision
    /// for that arrival; each joiner contacts a uniformly drawn
    /// cluster). A departure that fails (unknown node — e.g. listed
    /// twice — or the `N^{1/y}` population floor) is reported in
    /// [`BatchReport::rejected`] and does not abort the rest of the
    /// batch.
    ///
    /// The whole batch lands in the ledger under [`CostKind::Batch`]
    /// (with the usual per-operation spans nested inside it); the
    /// report carries the parallel round count alongside.
    pub fn step_parallel(&mut self, join_honesty: &[bool], leaves: &[NodeId]) -> BatchReport {
        self.ledger_mut().begin(CostKind::Batch);
        let mut joined = Vec::with_capacity(join_honesty.len());
        let mut left = Vec::with_capacity(leaves.len());
        let mut rejected = Vec::new();
        let mut rounds_parallel = 0u64;

        for &node in leaves {
            let before = self.ledger().total();
            match self.leave_inner(node) {
                Ok(()) => left.push(node),
                Err(e) => rejected.push((node, e)),
            }
            let delta = self.ledger().total().rounds - before.rounds;
            rounds_parallel = rounds_parallel.max(delta);
        }
        for &honest in join_honesty {
            let before = self.ledger().total();
            let contact = self.contact_cluster();
            joined.push(self.join_inner(contact, honest));
            let delta = self.ledger().total().rounds - before.rounds;
            rounds_parallel = rounds_parallel.max(delta);
        }

        let cost = self.ledger_mut().end();
        self.advance_time_step();
        BatchReport {
            joined,
            left,
            rejected,
            cost,
            rounds_parallel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NowParams;
    use now_net::NodeId;

    fn system(n0: usize, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, 0.2, seed)
    }

    #[test]
    fn batch_of_joins_is_one_time_step() {
        let mut sys = system(120, 1);
        let before = sys.population();
        let t0 = sys.time_step();
        let report = sys.step_parallel(&[true, true, false, true], &[]);
        assert_eq!(report.joined.len(), 4);
        assert!(report.left.is_empty());
        assert!(report.rejected.is_empty());
        assert_eq!(sys.population(), before + 4);
        assert_eq!(sys.time_step(), t0 + 1, "one step for the whole batch");
        sys.check_consistency().unwrap();
    }

    #[test]
    fn mixed_batch_nets_out() {
        let mut sys = system(150, 2);
        let leavers: Vec<NodeId> = sys.node_ids().into_iter().take(3).collect();
        let before = sys.population();
        let report = sys.step_parallel(&[true, true], &leavers);
        assert_eq!(report.left.len(), 3);
        assert_eq!(report.joined.len(), 2);
        assert_eq!(sys.population(), before - 1);
        sys.check_consistency().unwrap();
    }

    #[test]
    fn duplicate_leave_is_rejected_not_fatal() {
        let mut sys = system(150, 3);
        let victim = sys.node_ids()[0];
        let report = sys.step_parallel(&[], &[victim, victim]);
        assert_eq!(report.left, vec![victim]);
        assert_eq!(report.rejected.len(), 1);
        assert!(matches!(report.rejected[0].1, NowError::UnknownNode { .. }));
        sys.check_consistency().unwrap();
    }

    #[test]
    fn floor_rejections_are_reported() {
        let params = NowParams::for_capacity(1 << 10).unwrap(); // floor 32
        let mut sys = NowSystem::init_fast(params, 33, 0.0, 4);
        let leavers: Vec<NodeId> = sys.node_ids().into_iter().take(3).collect();
        let report = sys.step_parallel(&[], &leavers);
        assert_eq!(report.left.len(), 1, "only one leave fits above the floor");
        assert_eq!(report.rejected.len(), 2);
        assert!(report
            .rejected
            .iter()
            .all(|(_, e)| matches!(e, NowError::PopulationFloor { .. })));
    }

    #[test]
    fn parallel_rounds_are_max_not_sum() {
        let mut sys = system(200, 5);
        let leavers: Vec<NodeId> = sys.node_ids().into_iter().take(2).collect();
        let report = sys.step_parallel(&[true, true, true], &leavers);
        assert!(report.rounds_parallel > 0);
        assert!(
            report.rounds_parallel < report.cost.rounds,
            "a 5-op batch must beat serial: {} vs {}",
            report.rounds_parallel,
            report.cost.rounds
        );
        assert!(report.parallel_speedup() > 1.0);
    }

    #[test]
    fn empty_batch_still_advances_time() {
        // "At each time step … or nothing occurs."
        let mut sys = system(100, 6);
        let t0 = sys.time_step();
        let report = sys.step_parallel(&[], &[]);
        assert_eq!(sys.time_step(), t0 + 1);
        assert_eq!(report.cost, Cost::ZERO);
        assert_eq!(report.rounds_parallel, 0);
        assert_eq!(report.parallel_speedup(), 1.0);
    }

    #[test]
    fn batch_lands_under_batch_cost_kind() {
        let mut sys = system(150, 7);
        sys.step_parallel(&[true], &[]);
        let s = sys.ledger().stats(CostKind::Batch);
        assert_eq!(s.count, 1);
        assert!(s.total_messages > 0);
        // The nested join is still individually accounted.
        assert!(sys.ledger().stats(CostKind::Join).count >= 1);
    }

    #[test]
    fn batch_matches_serial_population_effect() {
        let mut a = system(160, 8);
        let mut b = system(160, 8);
        let leavers: Vec<NodeId> = a.node_ids().into_iter().take(4).collect();
        a.step_parallel(&[true, false, true], &leavers);
        for &n in &leavers {
            b.leave(n).unwrap();
        }
        for honest in [true, false, true] {
            b.join(honest);
        }
        assert_eq!(a.population(), b.population());
        assert_eq!(a.byz_population(), b.byz_population());
        // Batch took 1 step; serial took 7.
        assert_eq!(a.time_step() + 6, b.time_step());
    }

    #[test]
    fn sustained_batches_keep_invariants() {
        let mut sys = system(200, 9);
        for round in 0..30 {
            let leavers: Vec<NodeId> = sys.node_ids().into_iter().take(2).collect();
            let joins = [round % 3 != 0, true];
            sys.step_parallel(&joins, &leavers);
        }
        sys.check_consistency().unwrap();
        let audit = sys.audit();
        assert!(audit.size_bounds_ok);
    }
}
