//! The single batched entry point: [`NowSystem::step_batch`].
//!
//! The batch API grew one public method per execution strategy (serial,
//! scheduled waves, scoped threads, batch-scoped pools, caller-held
//! pools — times the flag/spec input split). This module collapses the
//! matrix into one method taking two values:
//!
//! * [`BatchInput`] — *what* the step does: the arrivals and departures
//!   of one time step, however constructed.
//! * [`ExecConfig`] — *how* it runs: the execution engine and its
//!   resources (thread count, a caller-held [`WavePool`], an event
//!   network model).
//!
//! Every engine is bit-deterministic from `(seed, input, config)`: the
//! serial engine replays the shared-stream semantics of a sequence of
//! [`NowSystem::join`] / [`NowSystem::leave`] calls, and all other
//! engines share the plan/apply wave machinery (see
//! [`crate::wave_exec`]) whose outcome is independent of thread count.
//! The legacy `step_parallel*` names survive as `#[deprecated]`
//! delegates onto this method.
//!
//! ```
//! use now_core::{BatchInput, ExecConfig, NowParams, NowSystem};
//!
//! let params = NowParams::for_capacity(1 << 10).unwrap();
//! let mut sys = NowSystem::init_fast(params, 300, 0.2, 7);
//! let input = BatchInput::new().joins_uniform(4, true);
//! let report = sys.step_batch(&input, &ExecConfig::threaded(2));
//! assert_eq!(report.joined.len(), 4);
//! ```

use crate::batch::{BatchReport, JoinSpec};
use crate::system::NowSystem;
use crate::wave_exec::{normalize_threads, PlanEngine, WavePool};
use now_net::{EventNetConfig, NodeId};

/// The work of one batched time step: departures first, then arrivals,
/// each in input order (the canonical order of the wave scheduler).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchInput {
    /// Arrivals, with the adversary's corruption decision and optional
    /// steered contact per entry.
    pub joins: Vec<JoinSpec>,
    /// Departures, by node id.
    pub leaves: Vec<NodeId>,
}

impl BatchInput {
    /// An empty step (still advances the time step when executed).
    pub fn new() -> Self {
        BatchInput::default()
    }

    /// A step from explicit join specs and leave ids (the shape the
    /// batch drivers produce).
    pub fn from_specs(joins: &[JoinSpec], leaves: &[NodeId]) -> Self {
        BatchInput {
            joins: joins.to_vec(),
            leaves: leaves.to_vec(),
        }
    }

    /// A step from per-arrival honesty flags (each joiner contacts a
    /// uniformly drawn cluster) and leave ids.
    pub fn from_flags(join_honesty: &[bool], leaves: &[NodeId]) -> Self {
        BatchInput {
            joins: join_honesty.iter().map(|&h| JoinSpec::uniform(h)).collect(),
            leaves: leaves.to_vec(),
        }
    }

    /// Appends one arrival.
    pub fn join(mut self, spec: JoinSpec) -> Self {
        self.joins.push(spec);
        self
    }

    /// Appends `n` uniform-contact arrivals of the given honesty.
    pub fn joins_uniform(mut self, n: usize, honest: bool) -> Self {
        self.joins
            .extend(std::iter::repeat(JoinSpec::uniform(honest)).take(n));
        self
    }

    /// Appends one departure.
    pub fn leave(mut self, node: NodeId) -> Self {
        self.leaves.push(node);
        self
    }

    /// Appends departures.
    pub fn leaves(mut self, nodes: &[NodeId]) -> Self {
        self.leaves.extend_from_slice(nodes);
        self
    }

    /// True when the step carries no operations.
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty() && self.leaves.is_empty()
    }
}

/// How [`NowSystem::step_batch`] executes a step.
///
/// Every variant is bit-deterministic; [`ExecConfig::Serial`] has its
/// own (shared-stream) randomness semantics, while all other variants
/// produce identical outcomes to each other at every thread count —
/// they differ only in wall-clock and spawn behavior (and the event
/// engine in *which* admitted operations execute, governed solely by
/// its `(seed, net)` pair).
#[derive(Clone, Copy)]
pub enum ExecConfig<'p> {
    /// Operations run one after another off the system's shared
    /// randomness stream — the semantics of serial [`NowSystem::join`]
    /// / [`NowSystem::leave`] calls folded into one time step. The wave
    /// schedule in the report is derived from measured costs, not
    /// executed.
    Serial,
    /// The plan/apply wave engine on the driving thread: waves are
    /// *executed* (per-operation substreams, canonical effect
    /// application), with no worker threads. The single-threaded
    /// reference every threaded configuration must match bit for bit.
    Scheduled,
    /// The wave engine on a batch-scoped [`WavePool`] of `threads`
    /// workers (one spawn set per call; loops should hold a pool and
    /// use [`ExecConfig::Pooled`]). `0` is treated as 1.
    Threaded {
        /// Worker threads for the batch-scoped pool.
        threads: usize,
    },
    /// The legacy scoped executor: bit-identical to the pooled engine
    /// but spawns fresh scoped workers for every wave of width ≥ 2.
    /// Retained as the spawn-overhead reference for benches and the
    /// pooled ≡ scoped property gates.
    Scoped {
        /// Scoped worker threads per wave. `0` is treated as 1.
        threads: usize,
    },
    /// The wave engine on a caller-held [`WavePool`]: successive
    /// batches reuse the pool's workers, so a run spawns O(threads)
    /// threads total.
    Pooled {
        /// The pool whose workers plan the waves.
        pool: &'p WavePool,
    },
    /// The event-driven engine: each admitted operation becomes a
    /// message on a seeded discrete-event network
    /// ([`now_net::EventNet`]) with per-link latency/jitter/loss/
    /// partition models, and operations execute in **delivery order**
    /// (conflict-free runs of deliveries still drain through the wave
    /// workers). Messages the network drops are admitted-but-not-
    /// executed ([`BatchReport::dropped`]); the delivery trace is
    /// reported in [`BatchReport::events`]. Replayable from
    /// `(seed, net)` alone — thread count never changes the outcome.
    Event {
        /// The per-link network model.
        net: EventNetConfig,
        /// Optional caller-held pool for planning delivery waves; the
        /// driving thread plans alone when absent.
        pool: Option<&'p WavePool>,
    },
}

impl<'p> ExecConfig<'p> {
    /// [`ExecConfig::Serial`].
    pub fn serial() -> Self {
        ExecConfig::Serial
    }

    /// [`ExecConfig::Scheduled`].
    pub fn scheduled() -> Self {
        ExecConfig::Scheduled
    }

    /// [`ExecConfig::Threaded`] with `threads` workers.
    pub fn threaded(threads: usize) -> Self {
        ExecConfig::Threaded { threads }
    }

    /// [`ExecConfig::Scoped`] with `threads` workers.
    pub fn scoped(threads: usize) -> Self {
        ExecConfig::Scoped { threads }
    }

    /// [`ExecConfig::Pooled`] on a caller-held pool.
    pub fn pooled(pool: &'p WavePool) -> Self {
        ExecConfig::Pooled { pool }
    }

    /// [`ExecConfig::Event`] planning on the driving thread.
    pub fn event(net: EventNetConfig) -> Self {
        ExecConfig::Event { net, pool: None }
    }

    /// [`ExecConfig::Event`] planning on a caller-held pool.
    pub fn event_in(net: EventNetConfig, pool: &'p WavePool) -> Self {
        ExecConfig::Event {
            net,
            pool: Some(pool),
        }
    }
}

impl std::fmt::Debug for ExecConfig<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ExecConfig::Serial => f.write_str("Serial"),
            ExecConfig::Scheduled => f.write_str("Scheduled"),
            ExecConfig::Threaded { threads } => f
                .debug_struct("Threaded")
                .field("threads", &threads)
                .finish(),
            ExecConfig::Scoped { threads } => {
                f.debug_struct("Scoped").field("threads", &threads).finish()
            }
            ExecConfig::Pooled { pool } => f
                .debug_struct("Pooled")
                .field("threads", &pool.threads())
                .finish(),
            ExecConfig::Event { net, pool } => f
                .debug_struct("Event")
                .field("net", &net)
                .field("pooled", &pool.is_some())
                .finish(),
        }
    }
}

impl NowSystem {
    /// Executes one batched time step — **the** batch entry point.
    ///
    /// `input` carries the step's departures and arrivals (canonical
    /// order: departures first, each list in input order); `exec`
    /// selects the execution engine. Rejection rules are identical
    /// across engines: departures are validated up front against the
    /// `N^{1/y}` population floor and the batch's earlier claims, and
    /// rejected operations cost nothing and occupy no wave slot.
    ///
    /// See [`ExecConfig`] for the determinism contract per engine.
    pub fn step_batch(&mut self, input: &BatchInput, exec: &ExecConfig<'_>) -> BatchReport {
        let report = match *exec {
            ExecConfig::Serial => self.step_serial_impl(&input.joins, &input.leaves),
            ExecConfig::Scheduled => {
                self.step_waves_impl(&input.joins, &input.leaves, PlanEngine::Scoped(1))
            }
            ExecConfig::Threaded { threads } => {
                let pool = WavePool::new(threads);
                self.step_waves_impl(&input.joins, &input.leaves, PlanEngine::Pooled(&pool))
            }
            ExecConfig::Scoped { threads } => self.step_waves_impl(
                &input.joins,
                &input.leaves,
                PlanEngine::Scoped(normalize_threads(threads)),
            ),
            ExecConfig::Pooled { pool } => {
                self.step_waves_impl(&input.joins, &input.leaves, PlanEngine::Pooled(pool))
            }
            ExecConfig::Event { net, pool } => {
                self.step_event_impl(&input.joins, &input.leaves, net, pool)
            }
        };
        self.record_step_metrics(&report);
        report
    }

    /// Folds one step's [`BatchReport`] into the metrics registry
    /// (no-op while metrics are off). Centralized here so every engine
    /// feeds the same metric names from the same report fields —
    /// protocol outcomes only, never the advisory `wall_nanos`.
    fn record_step_metrics(&mut self, report: &BatchReport) {
        if self.hub.metrics.is_none() {
            return;
        }
        self.hub.count("now_steps_total", 1);
        self.hub
            .count("now_ops_joined_total", report.joined.len() as u64);
        self.hub
            .count("now_ops_left_total", report.left.len() as u64);
        self.hub
            .count("now_ops_rejected_total", report.rejected.len() as u64);
        self.hub
            .count("now_contact_redraws_total", report.contact_redraws);
        self.hub.count("now_messages_total", report.cost.messages);
        self.hub
            .count("now_rounds_serial_total", report.cost.rounds);
        self.hub
            .count("now_rounds_parallel_total", report.rounds_parallel);
        self.hub.count("now_waves_total", report.waves.len() as u64);
        for wave in &report.waves {
            self.hub.observe(
                "now_wave_width",
                crate::hub::WAVE_WIDTH_BOUNDS,
                wave.ops as u64,
            );
            self.hub.observe(
                "now_wave_rounds",
                crate::hub::WAVE_ROUNDS_BOUNDS,
                wave.rounds_max,
            );
        }
        let population = self.registry.population() as i64;
        let clusters = self.registry.cluster_count() as i64;
        self.hub.gauge("now_population", population);
        self.hub.gauge("now_clusters", clusters);
        self.hub.gauge("now_step", self.time_step as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NowParams;

    fn system(n0: usize, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, 0.2, seed)
    }

    #[test]
    fn batch_input_builders_agree() {
        let a = BatchInput::from_flags(&[true, false], &[]);
        let b = BatchInput::new()
            .join(JoinSpec::uniform(true))
            .join(JoinSpec::uniform(false));
        assert_eq!(a, b);
        assert!(BatchInput::new().is_empty());
        assert!(!a.is_empty());
    }

    #[test]
    fn scheduled_threaded_scoped_and_pooled_agree() {
        let input = BatchInput::new().joins_uniform(12, true);
        let mut reference = system(260, 33);
        let want = reference.step_batch(&input, &ExecConfig::scheduled());
        let pool = WavePool::new(3);
        for exec in [
            ExecConfig::threaded(4),
            ExecConfig::scoped(2),
            ExecConfig::pooled(&pool),
        ] {
            let mut sys = system(260, 33);
            let got = sys.step_batch(&input, &exec);
            assert_eq!(got.joined, want.joined, "{exec:?}");
            assert_eq!(got.cost, want.cost, "{exec:?}");
            assert_eq!(got.waves, want.waves, "{exec:?}");
            assert_eq!(sys.population(), reference.population(), "{exec:?}");
        }
    }

    #[test]
    fn serial_engine_reports_no_events() {
        let mut sys = system(240, 5);
        let report = sys.step_batch(
            &BatchInput::new().joins_uniform(3, true),
            &ExecConfig::serial(),
        );
        assert_eq!(report.dropped, 0);
        assert!(report.events.is_empty());
        assert_eq!(report.joined.len(), 3);
    }

    #[test]
    fn empty_step_still_advances_time() {
        let mut sys = system(240, 6);
        let t0 = sys.time_step();
        let report = sys.step_batch(&BatchInput::new(), &ExecConfig::scheduled());
        assert_eq!(report.joined.len() + report.left.len(), 0);
        assert_eq!(sys.time_step(), t0 + 1);
    }

    #[test]
    fn exec_config_debug_is_compact() {
        let pool = WavePool::new(2);
        assert_eq!(format!("{:?}", ExecConfig::serial()), "Serial");
        assert!(format!("{:?}", ExecConfig::pooled(&pool)).contains("Pooled"));
        assert!(
            format!("{:?}", ExecConfig::event(now_net::EventNetConfig::ideal())).contains("Event")
        );
    }
}
