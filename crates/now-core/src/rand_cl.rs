//! `randCl` — size-biased cluster selection by continuous-time random
//! walk on the overlay.
//!
//! Per the paper's §3.1 footnote, a *biased CTRW* from cluster `Cᵢ` is a
//! sequence of CTRWs: at each hop the current cluster collaboratively
//! draws (via `randNum`) the next neighbor and the exponential holding
//! time; when the walk's duration expires at cluster `C`, it is accepted
//! with probability `|C| / max_C'|C'|`, otherwise a fresh CTRW starts
//! from there. The CTRW's uniform stationary law over vertices times the
//! size-biased acceptance yields the target distribution `(|C|/n)` —
//! i.e. a uniformly random *node*'s cluster.
//!
//! Byzantine influence: each hop's collective choices run through
//! [`crate::NowSystem::rand_num_in`], so a cluster with ≥ 1/3 Byzantine
//! members lets the adversary steer the hop (and [`crate::Malice`] may
//! redirect it outright). Every hop is also a quorum-validated
//! cluster-to-cluster message, accounted as `|C|·|C'|` message units.

use crate::system::NowSystem;
use now_net::{ClusterId, CostKind};
use std::collections::BTreeMap;

/// Diagnostics of one `randCl` invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkTrace {
    /// Total hops across all component CTRWs.
    pub hops: u64,
    /// Number of rejected endpoints (walk restarts).
    pub restarts: u64,
    /// Hops that passed through a `randNum`-compromised cluster.
    pub compromised_hops: u64,
}

/// Per-cluster facts a walk re-reads on every visit, cached for the
/// duration of one `randCl` invocation (membership and overlay are
/// immutable while a walk runs, so the cache never goes stale).
///
/// Without this, every hop re-derived the overlay degree and re-fetched
/// cluster size and `randNum`-security from the registry — the dominant
/// wall-clock cost of the biased CTRW that every join performs
/// (`bench_randcl` measures the win). Neighbor lists are *not* cached:
/// [`crate::NowSystem`]'s overlay hands out its sorted slab slices by
/// borrow, so a hop reads them allocation-free at the point of use.
struct VertexFacts {
    degree: usize,
    size: u64,
    /// Plain-model `randNum` security (< 1/3 Byzantine): gates the
    /// [`crate::Malice`] hop-forcing hook.
    secure_plain: bool,
    /// Security under the deployment's [`crate::SecurityMode`]: gates
    /// the collective draws themselves.
    secure_mode: bool,
}

/// Looks up (or computes once) the walk-relevant facts of `c`.
fn facts<'a>(
    cache: &'a mut BTreeMap<ClusterId, VertexFacts>,
    sys: &NowSystem,
    c: ClusterId,
) -> &'a VertexFacts {
    cache.entry(c).or_insert_with(|| {
        // INVARIANT: walk steps resolve neighbors from the live
        // overlay, whose vertices are exactly the live clusters.
        let cluster = sys.cluster(c).expect("walk visits live clusters");
        VertexFacts {
            degree: sys.overlay().degree(c),
            size: cluster.size() as u64,
            secure_plain: cluster.rand_num_secure(),
            secure_mode: cluster.rand_num_secure_in(sys.params().security()),
        }
    })
}

impl NowSystem {
    /// One collective draw of a walk step against pre-fetched cluster
    /// facts: ledger spans and randomness stream are *identical* to
    /// [`NowSystem::rand_num_in`] — this only skips the per-call
    /// registry lookups the walk loop already has cached.
    fn rand_num_prefetched(
        &mut self,
        c: ClusterId,
        range: u64,
        size: u64,
        secure: bool,
        purpose: crate::malice::RandNumPurpose,
    ) -> u64 {
        use rand::Rng as _;
        let range = range.max(1);
        self.ledger.begin(CostKind::RandNum);
        self.ledger.add_messages(2 * size * size.saturating_sub(1));
        self.ledger.add_rounds(2);
        self.ledger.end();
        if secure {
            self.rng.gen_range(0..range)
        } else {
            let ctx = crate::malice::RandNumContext {
                cluster: c,
                purpose,
            };
            self.malice.rand_num(range, ctx, &mut self.rng)
        }
    }

    /// Runs `randCl` starting from cluster `start`; returns the selected
    /// cluster and the walk diagnostics. Costs are recorded under
    /// [`CostKind::RandCl`] (inclusive of the per-hop `randNum`s).
    ///
    /// Hot path: every join performs this walk, so the per-cluster facts
    /// a hop needs (overlay degree, neighbor list, cluster size,
    /// `randNum` security) are cached across the walk's steps in a
    /// [`VertexFacts`] table instead of being re-derived per hop, and
    /// the two collective draws of a hop (Exp-holding-time and neighbor
    /// choice) are issued back-to-back against one cached record. The
    /// randomness stream and ledger accounting are bit-identical to the
    /// naive per-hop derivation.
    ///
    /// # Panics
    /// Panics if `start` is not a live cluster.
    pub fn rand_cl_from(&mut self, start: ClusterId) -> (ClusterId, WalkTrace) {
        assert!(
            self.registry.contains_cluster(start),
            "rand_cl_from: unknown cluster {start}"
        );
        self.ledger.begin(CostKind::RandCl);
        let mut trace = WalkTrace {
            hops: 0,
            restarts: 0,
            compromised_hops: 0,
        };
        let m = self.overlay.vertex_count();
        if m <= 1 {
            self.ledger.end();
            return (start, trace);
        }

        let duration = self.params.ctrw_duration(m);
        let mut current = start;
        // Resolution for fixed-point randomness drawn via randNum.
        const RES: u64 = 1 << 24;
        // Nothing mutates membership or overlay while a walk runs, so
        // the facts cache stays valid across hops *and* restarts.
        let mut cache: BTreeMap<ClusterId, VertexFacts> = BTreeMap::new();

        // Hard per-invocation hop cap: compromised clusters can rush
        // their holding times to ~0 (see `Malice`), so a Byzantine-dense
        // region could otherwise bounce a walk indefinitely without
        // consuming walk-time. Honest walks use ~log²m hops; the cap is
        // far above that and only binds under heavy compromise.
        let hop_cap = 2_000 + 200 * (m as u64);
        for _restart in 0..=self.params.max_walk_restarts() {
            let mut remaining = duration;
            // One CTRW.
            loop {
                if trace.hops >= hop_cap {
                    self.ledger.end();
                    return (current, trace);
                }
                let cur = facts(&mut cache, self, current);
                let (degree, size, secure_plain, secure_mode) =
                    (cur.degree, cur.size, cur.secure_plain, cur.secure_mode);
                if degree == 0 {
                    break; // isolated vertex absorbs the walk
                }
                // Collaborative holding time: Exp(degree), derived from a
                // randNum draw (compromised clusters control it).
                let u = self.rand_num_prefetched(
                    current,
                    RES,
                    size,
                    secure_mode,
                    crate::malice::RandNumPurpose::WalkHoldingTime,
                );
                let unit = (u as f64 + 1.0) / (RES as f64 + 1.0);
                let hold = -unit.ln() / degree as f64;
                if hold >= remaining {
                    break; // duration expires while sitting at `current`
                }
                remaining -= hold;
                // Collaborative neighbor choice.
                let idx = self.rand_num_prefetched(
                    current,
                    degree as u64,
                    size,
                    secure_mode,
                    crate::malice::RandNumPurpose::WalkNeighborChoice,
                ) as usize;
                let nbrs = self.overlay.neighbors(current);
                // INVARIANT: walks only stand on vertices with nonempty
                // neighbor lists; `min` clamps the drawn index into bounds.
                let mut next = nbrs[idx.min(nbrs.len() - 1)];
                if !secure_plain {
                    trace.compromised_hops += 1;
                    if let Some(forced) = self.malice.walk_hop(nbrs, &mut self.rng) {
                        if nbrs.contains(&forced) {
                            next = forced;
                        }
                    }
                }
                // Quorum-validated hand-off message C → C'.
                let to_size = facts(&mut cache, self, next).size;
                self.ledger.add_messages(size * to_size);
                self.ledger.add_rounds(1);
                trace.hops += 1;
                current = next;
            }
            // Size-biased acceptance at the endpoint.
            let cur = facts(&mut cache, self, current);
            let (size, secure_mode) = (cur.size, cur.secure_mode);
            let p_accept = self.params.acceptance_probability(size as usize);
            let draw = self.rand_num_prefetched(
                current,
                RES,
                size,
                secure_mode,
                crate::malice::RandNumPurpose::WalkAcceptance,
            );
            if (draw as f64 + 0.5) / RES as f64 <= p_accept {
                self.ledger.end();
                return (current, trace);
            }
            trace.restarts += 1;
        }
        // Restart cap exhausted (never in the invariant regime; see
        // NowParams::max_walk_restarts) — accept the current endpoint.
        self.ledger.end();
        (current, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NowParams;
    use std::collections::BTreeMap;

    fn system(n0: usize, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, 0.2, seed)
    }

    #[test]
    fn returns_live_cluster() {
        let mut sys = system(200, 1);
        let start = sys.cluster_ids()[0];
        for _ in 0..20 {
            let (c, _) = sys.rand_cl_from(start);
            assert!(sys.cluster(c).is_some());
        }
        sys.check_consistency().unwrap();
    }

    #[test]
    fn single_cluster_short_circuits() {
        let mut sys = system(20, 2); // one cluster
        assert_eq!(sys.cluster_count(), 1);
        let only = sys.cluster_ids()[0];
        let (c, trace) = sys.rand_cl_from(only);
        assert_eq!(c, only);
        assert_eq!(trace.hops, 0);
    }

    #[test]
    fn walk_costs_are_recorded() {
        let mut sys = system(200, 3);
        let start = sys.cluster_ids()[0];
        let before = sys.ledger().stats(CostKind::RandCl);
        let (_, trace) = sys.rand_cl_from(start);
        let after = sys.ledger().stats(CostKind::RandCl);
        assert_eq!(after.count - before.count, 1);
        assert!(trace.hops > 0, "multi-cluster walk should hop");
        assert!(after.total_messages > before.total_messages);
        // Rounds at least one per hop.
        assert!(after.total_rounds - before.total_rounds >= trace.hops);
    }

    #[test]
    fn walk_hop_count_tracks_log_squared() {
        let mut sys = system(400, 4);
        let start = sys.cluster_ids()[0];
        let m = sys.overlay().vertex_count();
        let log_m = ((m + 2) as f64).log2();
        let mut hops = 0u64;
        let mut restarts = 0u64;
        let trials = 30;
        for _ in 0..trials {
            let (_, t) = sys.rand_cl_from(start);
            hops += t.hops;
            restarts += t.restarts;
        }
        let mean_hops = hops as f64 / trials as f64;
        // Expected hops per accepted walk ≈ (1+restarts) · log²m; allow
        // a wide band.
        let per_walk = mean_hops / (1.0 + restarts as f64 / trials as f64);
        assert!(
            per_walk > 0.2 * log_m * log_m && per_walk < 5.0 * log_m * log_m,
            "hops/walk {per_walk} vs log²m {}",
            log_m * log_m
        );
    }

    /// Measures the TV distance between `randCl`'s endpoint frequencies
    /// and the size-biased law on one seeded system, plus the hit counts
    /// of the artificially enlarged/shrunken clusters.
    fn endpoint_tv_for_seed(seed: u64, trials: u64) -> (f64, u64, u64) {
        let mut sys = system(300, seed);
        // Make sizes unequal: move a chunk of members from one cluster
        // to another (bypassing ops; this is a distribution test).
        let ids = sys.cluster_ids();
        let (big, small) = (ids[0], ids[1]);
        for _ in 0..8 {
            let node = sys.cluster(small).unwrap().member_at(0);
            sys.move_node(node, big);
        }
        sys.check_consistency().unwrap();

        let start = ids[2 % ids.len()];
        let mut counts: BTreeMap<now_net::ClusterId, u64> = BTreeMap::new();
        for _ in 0..trials {
            let (c, _) = sys.rand_cl_from(start);
            *counts.entry(c).or_default() += 1;
        }
        let n = sys.population() as f64;
        let mut tv = 0.0;
        for id in sys.cluster_ids() {
            let expect = sys.cluster(id).unwrap().size() as f64 / n;
            let got = *counts.get(&id).unwrap_or(&0) as f64 / trials as f64;
            tv += (expect - got).abs();
        }
        tv /= 2.0;
        let big_hits = *counts.get(&big).unwrap_or(&0);
        let small_hits = *counts.get(&small).unwrap_or(&0);
        (tv, big_hits, small_hits)
    }

    /// The distribution headline: endpoint frequencies match cluster
    /// sizes, i.e. `randCl` samples a uniformly random *node*'s cluster.
    ///
    /// Asserted over a small seed *ensemble* rather than one pinned
    /// seed (see ROADMAP "statistical-test robustness"): the median TV
    /// distance must be comfortably small and even the worst seed must
    /// stay within the sampling-noise band, so a change to the vendored
    /// RNG stream cannot silently invalidate the test.
    #[test]
    fn endpoint_distribution_is_size_biased() {
        let mut tvs = Vec::new();
        let mut bias_ok = 0usize;
        let seeds = [5u64, 6, 7, 8, 9];
        for &seed in &seeds {
            let (tv, big_hits, small_hits) = endpoint_tv_for_seed(seed, 1200);
            tvs.push(tv);
            // The enlarged cluster should out-hit the shrunken one.
            if big_hits > small_hits {
                bias_ok += 1;
            }
        }
        tvs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = tvs[tvs.len() / 2];
        let worst = *tvs.last().unwrap();
        assert!(
            median < 0.08,
            "median TV distance from size-biased law: {median} (ensemble {tvs:?})"
        );
        assert!(
            worst < 0.14,
            "worst-seed TV distance: {worst} (ensemble {tvs:?})"
        );
        assert!(
            bias_ok >= seeds.len() - 1,
            "size bias absent on {}/{} seeds",
            seeds.len() - bias_ok,
            seeds.len()
        );
    }

    #[test]
    fn compromised_hops_are_flagged() {
        let mut sys = system(200, 6);
        // Corrupt one cluster past 1/3 by brute registry surgery:
        // detach honest members until the fraction crosses.
        let victim = sys.cluster_ids()[0];
        let mut moved = 0;
        while sys.cluster(victim).unwrap().rand_num_secure() {
            let honest_member = sys
                .cluster(victim)
                .unwrap()
                .member_vec()
                .into_iter()
                .find(|&m| sys.is_honest(m).unwrap())
                .expect("has honest members");
            let other = sys.cluster_ids()[1];
            sys.move_node(honest_member, other);
            moved += 1;
            assert!(moved < 100, "runaway");
        }
        sys.check_consistency().unwrap();
        // Many walks from the compromised cluster: its own hops count as
        // compromised.
        let mut compromised = 0u64;
        for _ in 0..20 {
            let (_, t) = sys.rand_cl_from(victim);
            compromised += t.compromised_hops;
        }
        assert!(
            compromised > 0,
            "walks through a compromised cluster must be flagged"
        );
    }

    #[test]
    #[should_panic(expected = "unknown cluster")]
    fn unknown_start_panics() {
        let mut sys = system(100, 7);
        let ghost = now_net::ClusterId::from_raw(99_999);
        let _ = sys.rand_cl_from(ghost);
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed: u64| {
            let mut sys = system(250, seed);
            let start = sys.cluster_ids()[0];
            let picks: Vec<u64> = (0..10).map(|_| sys.rand_cl_from(start).0.raw()).collect();
            picks
        };
        assert_eq!(run(8), run(8));
        assert_ne!(run(8), run(9), "different seeds should differ");
    }
}
