//! The event-driven batch engine ([`crate::ExecConfig::Event`]).
//!
//! The paper's model is synchronous — §6 names removing that assumption
//! as the open problem. This engine takes the step: instead of a round
//! barrier admitting the whole batch at once, every admitted operation
//! becomes a **message** on a seeded discrete-event network
//! ([`EventNet`]) whose per-link latency/jitter/loss/partition models
//! decide *when* — and *whether* — the protocol reacts to it.
//!
//! # Execution model
//!
//! Clusters are the network's ports, one per live cluster in ascending
//! id order. A departure is the home cluster's own failure detection —
//! a self-message, delivered after its local detection latency and
//! exempt from loss and partition (a cluster cannot be partitioned from
//! itself). An arrival is the joiner's contact message, sent from a
//! uniformly drawn port to the contact cluster's port across the
//! modeled network: it can be lost, or severed by a partition that has
//! not healed within the step.
//!
//! The protocol then runs in **delivery order**: the drained deliveries
//! form the execution sequence, re-partitioned into conflict-free waves
//! (contiguous runs of footprint-disjoint deliveries) that drain
//! through the same plan/apply machinery — and optionally the same
//! [`WavePool`] workers — as the scheduled engine. Split/merge
//! maintenance runs after each wave, i.e. it is *driven by the
//! deliveries* rather than by a barrier. Per-operation randomness is
//! keyed by the operation's **canonical** index ([`OpSpec::canon`]),
//! not its delivery position, so an operation plans identically
//! wherever the network schedules it.
//!
//! A dropped message means the operation simply does not happen this
//! step: the joiner never reached its contact (the id it would have
//! used is still consumed, keeping admission deterministic), and the
//! report counts it in [`BatchReport::dropped`] with a loss record in
//! the trace. Departure self-messages always deliver, so a step never
//! strands a leaver.
//!
//! # Determinism
//!
//! The network is seeded from the system's own stream (one master draw
//! per step, exactly like the wave engines), so the delivery trace and
//! the final state are a pure function of `(seed, EventNetConfig)` —
//! the thread count of the optional pool changes nothing, which the
//! workspace determinism tests pin byte-for-byte.

use crate::batch::{BatchReport, JoinSpec, WaveStats};
use crate::system::NowSystem;
use crate::wave_exec::{partition_waves, AdmittedBatch, OpSpec, PlanEngine, PlannedOp, WavePool};
use now_net::{
    ClusterId, CostKind, DetRng, DropReason, EventNet, EventNetConfig, EventRecord, NodeId,
    Partition,
};
use now_trace::TraceData;
use rand::{Rng, RngCore};
use std::collections::BTreeSet;

/// The substream index reserved for the engine's own routing draws
/// (which port a joiner contacts from). Admitted operations use their
/// canonical position `0, 1, …`, so the reserved index can never
/// collide with an operation's.
const ROUTE_STREAM: u64 = u64::MAX;

impl NowSystem {
    pub(crate) fn step_event_impl(
        &mut self,
        joins: &[JoinSpec],
        leaves: &[NodeId],
        net: EventNetConfig,
        pool: Option<&WavePool>,
    ) -> BatchReport {
        // Wall-clock measurement only: feeds `wall_nanos`, which is
        // excluded from byte-diffed reports.
        let start = now_trace::stopwatch();
        self.ledger.begin(CostKind::Batch);
        let step = self.time_step;

        let AdmittedBatch {
            joined,
            left,
            rejected,
            specs,
            mut contact_redraws,
        } = self.admit_batch(joins, leaves);

        // The step's network conditions, as trace events: an in-force
        // partition (and its scheduled heal) governs what follows.
        if let Partition::Split { groups } = net.partition {
            if groups >= 2 {
                self.hub.event(
                    step,
                    TraceData::Partition {
                        groups: groups as u64,
                    },
                );
                if let Some(at) = net.heal_at {
                    self.hub.event(step, TraceData::Heal { at });
                }
            }
        }

        // Ports: the live clusters at step start, ascending id order.
        let ports: Vec<ClusterId> = self.registry.cluster_ids().to_vec();
        let port_of = |c: ClusterId| -> usize {
            ports
                .binary_search(&c)
                // INVARIANT: admission already rejected ops whose center is
                // not a live cluster, and `ports` snapshots that same set.
                .expect("admitted op centers on a live cluster")
        };

        // One master draw per step, exactly like the wave engines, so
        // the serial-vs-event divergence point is the engine, not the
        // stream position.
        let master = self.rng.next_u64();
        let mut link = EventNet::<u64>::new(ports.len(), net, master);
        let mut route = DetRng::for_op(master, self.time_step, ROUTE_STREAM);

        // ---- inject: one message per admitted operation ----
        let mut events: Vec<EventRecord> = Vec::with_capacity(specs.len());
        let mut dropped = 0u64;
        for spec in &specs {
            let to = port_of(spec.center);
            let from = match spec.op {
                // Failure detection is local to the home cluster.
                PlannedOp::Leave { .. } => to,
                // The joiner contacts from "somewhere on the network":
                // a uniformly drawn port, so partitions cut a
                // deterministic, config-governed fraction of arrivals.
                PlannedOp::Join { .. } => route.gen_range(0..ports.len()),
            };
            self.hub.event(
                step,
                TraceData::MsgSend {
                    canon: spec.canon,
                    from: ports[from].raw(),
                    to: spec.center.raw(),
                },
            );
            if let Some(reason) = link.send(from, to, spec.canon) {
                let reason = match reason {
                    DropReason::Loss => "loss",
                    DropReason::Partition => "partition",
                    DropReason::DeadRecipient => "dead_recipient",
                };
                self.hub.event(
                    step,
                    TraceData::MsgDrop {
                        time: link.now(),
                        canon: spec.canon,
                        reason,
                    },
                );
                events.push(EventRecord {
                    time: link.now(),
                    op: spec.canon,
                    delivered: false,
                });
                dropped += 1;
            }
        }

        // ---- drain: delivery order is the execution order ----
        let mut order: Vec<u64> = Vec::with_capacity(specs.len());
        while let Some((time, env)) = link.pop() {
            self.hub.event(
                step,
                TraceData::MsgDeliver {
                    time,
                    canon: env.payload,
                },
            );
            events.push(EventRecord {
                time,
                op: env.payload,
                delivered: true,
            });
            order.push(env.payload);
        }
        debug_assert_eq!(link.delivered() + link.dropped(), link.messages_sent());

        let executed: BTreeSet<u64> = order.iter().copied().collect();
        let join_canons: Vec<u64> = specs
            .iter()
            .filter(|s| matches!(s.op, PlannedOp::Join { .. }))
            .map(|s| s.canon)
            .collect();
        let mut slots: Vec<Option<OpSpec>> = specs.into_iter().map(Some).collect();
        let delivered_specs: Vec<OpSpec> = order
            .iter()
            .map(|&canon| {
                slots[canon as usize]
                    .take()
                    // INVARIANT: the scheduler delivers each canon exactly once,
                    // so its slot is still occupied on first (and only) take.
                    .expect("each op delivered at most once")
            })
            .collect();

        // The report lists what actually happened: every admitted
        // departure executes (self-messages always deliver), while a
        // joiner whose contact message was dropped never joined — its
        // pre-assigned id is consumed but never attached.
        let joined: Vec<NodeId> = joined
            .into_iter()
            .zip(join_canons)
            .filter_map(|(node, canon)| executed.contains(&canon).then_some(node))
            .collect();
        debug_assert_eq!(
            delivered_specs
                .iter()
                .filter(|s| matches!(s.op, PlannedOp::Leave { .. }))
                .count(),
            left.len(),
            "departure self-messages always deliver"
        );

        // ---- execute conflict-free delivery runs through the waves ----
        let engine = match pool {
            Some(p) => PlanEngine::Pooled(p),
            None => PlanEngine::Scoped(1),
        };
        let waves = partition_waves(&delivered_specs);
        let mut wave_stats: Vec<WaveStats> = Vec::with_capacity(waves.len());
        for wave in waves {
            let stats = self.execute_wave(
                &delivered_specs[wave],
                &engine,
                master,
                &mut contact_redraws,
            );
            wave_stats.push(stats);
        }

        if contact_redraws > 0 {
            self.hub.event(
                step,
                TraceData::ContactRedraws {
                    count: contact_redraws,
                },
            );
        }
        self.hub.count("now_net_sent_total", link.messages_sent());
        self.hub.count("now_net_delivered_total", link.delivered());
        self.hub.count("now_net_dropped_total", link.dropped());
        let rounds_parallel = wave_stats.iter().map(|w| w.rounds_max).sum();
        let cost = self.ledger.end();
        self.advance_time_step();
        BatchReport {
            joined,
            left,
            rejected,
            cost,
            rounds_parallel,
            waves: wave_stats,
            contact_redraws,
            dropped,
            events,
            wall_nanos: start.elapsed_nanos(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{BatchInput, ExecConfig};
    use crate::params::NowParams;
    use now_net::Partition;

    fn system(n0: usize, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, 0.2, seed)
    }

    fn strip_wall(mut r: BatchReport) -> BatchReport {
        r.wall_nanos = 0;
        r
    }

    #[test]
    fn ideal_network_executes_every_admitted_op() {
        let mut sys = system(280, 11);
        let victims: Vec<_> = sys.node_ids().into_iter().take(3).collect();
        let input = BatchInput::from_flags(&[true, true, false, true], &victims);
        let report = sys.step_batch(&input, &ExecConfig::event(EventNetConfig::ideal()));
        assert_eq!(report.joined.len(), 4);
        assert_eq!(report.left, victims);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.events.len(), 7, "one delivery record per op");
        assert!(report.events.iter().all(|e| e.delivered));
        assert!(sys.check_consistency().is_ok());
    }

    #[test]
    fn certain_loss_drops_joins_but_never_leaves() {
        let mut sys = system(280, 12);
        let victims: Vec<_> = sys.node_ids().into_iter().take(2).collect();
        let pop = sys.population();
        let input = BatchInput::from_flags(&[true; 6], &victims);
        let net = EventNetConfig::ideal().with_drop(1.0);
        let report = sys.step_batch(&input, &ExecConfig::event(net));
        // Self-messages (departures) are exempt from loss; every join's
        // cross-port contact message is lost. (A join routed to its own
        // port is also exempt, but the drawn routes here all cross.)
        assert_eq!(report.left, victims);
        assert_eq!(report.joined.len() + report.dropped as usize, 6);
        assert_eq!(
            sys.population(),
            pop - victims.len() as u64 + report.joined.len() as u64,
            "dropped joiners never attach"
        );
        let losses = report.events.iter().filter(|e| !e.delivered).count();
        assert_eq!(losses as u64, report.dropped);
        assert!(sys.check_consistency().is_ok());
    }

    #[test]
    fn unhealed_partition_cuts_cross_group_arrivals() {
        let mut sys = system(280, 13);
        let net = EventNetConfig::ideal().with_partition(2);
        let report = sys.step_batch(
            &BatchInput::new().joins_uniform(12, true),
            &ExecConfig::event(net),
        );
        assert!(
            report.dropped > 0,
            "with 12 uniform routes some must cross the cut"
        );
        assert!(report.joined.len() < 12);
        // A healed partition severs nothing: latency 1 deliveries all
        // land at t=1 ≥ heal time.
        let mut healed = system(280, 13);
        let report = healed.step_batch(
            &BatchInput::new().joins_uniform(12, true),
            &ExecConfig::event(net.healing_at(1)),
        );
        assert_eq!(report.dropped, 0);
        assert_eq!(report.joined.len(), 12);
    }

    #[test]
    fn event_engine_is_pool_invariant() {
        let victims: Vec<_> = system(300, 21).node_ids().into_iter().take(4).collect();
        let input = BatchInput::from_flags(&[true; 10], &victims);
        let net = EventNetConfig::ideal()
            .with_latency(3)
            .with_jitter(5)
            .with_drop(0.2)
            .with_partition(3)
            .healing_at(6);
        let mut solo = system(300, 21);
        let want = strip_wall(solo.step_batch(&input, &ExecConfig::event(net)));
        for threads in [1usize, 2, 4, 8] {
            let pool = WavePool::new(threads);
            let mut sys = system(300, 21);
            let got = strip_wall(sys.step_batch(&input, &ExecConfig::event_in(net, &pool)));
            assert_eq!(got.events, want.events, "trace at {threads} threads");
            assert_eq!(got.joined, want.joined);
            assert_eq!(got.left, want.left);
            assert_eq!(got.dropped, want.dropped);
            assert_eq!(got.cost, want.cost);
            assert_eq!(got.waves, want.waves);
            assert_eq!(sys.population(), solo.population());
            assert_eq!(sys.check_consistency(), solo.check_consistency());
        }
    }

    #[test]
    fn partition_predicate_matches_port_groups() {
        // The engine's routing is over cluster ports in ascending id
        // order; sanity-check the model's severing rule directly.
        let p = Partition::Split { groups: 2 };
        assert!(p.severs(0, 1));
        assert!(!p.severs(0, 2));
    }
}
