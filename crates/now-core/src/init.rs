//! The NOW initialization phase, genuinely executed (fidelity L0).
//!
//! Per §3.2 of the paper, initialization has two sub-phases, both run
//! here as real per-node protocols over the synchronous bus:
//!
//! 1. **Network discovery** ([`discover`]): flooding over the bootstrap
//!    graph until every honest node knows every identity. Terminates
//!    within the diameter of the graph restricted to edges adjacent to
//!    at least one honest node; costs `O(n·e)` message units (each of
//!    the `n` identities crosses each edge at most once per direction).
//! 2. **Clusterization** ([`clusterize`]): a representative committee of
//!    logarithmic size agrees on a random seed (we run the *real*
//!    commit–reveal `randNum` of [`now_agreement`] among the committee),
//!    derives a uniformly random partition into clusters of `k·logN`,
//!    and broadcasts the assignment, which each node accepts from a
//!    majority of the committee.
//!
//! **Substitution note (DESIGN.md §3):** the paper elects the committee
//! with the Byzantine agreement of King et al. (`Õ(n√n)` messages),
//! which guarantees a > 2/3-honest committee against the
//! full-information adversary. We inherit that guarantee rather than
//! re-prove it: the simulator draws the committee uniformly (the
//! distribution \[19\] certifies) and *accounts* the `Õ(n√n)` election
//! cost, then executes everything downstream of the election for real.

use crate::error::NowError;
use crate::params::NowParams;
use crate::system::NowSystem;
use now_agreement::outcome::ByzPlan;
use now_agreement::rand_num::rand_num_commit_reveal;
use now_graph::sample::{sample_distinct, shuffle};
use now_graph::Graph;
use now_net::{Bus, CostKind, DetRng, Ledger};
use std::collections::BTreeSet;

/// Result of the discovery flooding.
#[derive(Debug, Clone)]
pub struct DiscoveryOutcome {
    /// Per-port knowledge at quiescence (`known[p]` = ids `p` knows).
    pub known: Vec<BTreeSet<usize>>,
    /// Rounds until no honest node learned anything new.
    pub rounds: u64,
    /// Message units (identity × edge transmissions) — the paper's
    /// `O(n·e)` quantity.
    pub message_units: u64,
    /// Whether every honest node knows every identity.
    pub complete: bool,
}

/// Runs discovery flooding on `bootstrap` with the given Byzantine set
/// (worst case: Byzantine nodes never relay; they cannot forge ids).
/// Costs are recorded under [`CostKind::Discovery`].
pub fn discover(bootstrap: &Graph, byz: &BTreeSet<usize>, ledger: &mut Ledger) -> DiscoveryOutcome {
    let n = bootstrap.vertex_count();
    ledger.begin(CostKind::Discovery);
    let mut bus: Bus<Vec<u64>> = Bus::new(n);
    let mut known: Vec<BTreeSet<usize>> = (0..n)
        .map(|p| {
            let mut s: BTreeSet<usize> = bootstrap.neighbors(p).collect();
            s.insert(p);
            s
        })
        .collect();
    let mut fresh: Vec<Vec<usize>> = known.iter().map(|s| s.iter().copied().collect()).collect();
    let mut units = 0u64;
    let mut rounds = 0u64;

    loop {
        // Send phase: honest nodes relay everything new.
        let mut sent_any = false;
        for (p, fresh_p) in fresh.iter_mut().enumerate() {
            if byz.contains(&p) || fresh_p.is_empty() {
                continue;
            }
            let packet: Vec<u64> = fresh_p.iter().map(|&id| id as u64).collect();
            for nb in bootstrap.neighbors(p) {
                units += packet.len() as u64;
                bus.send(p, nb, packet.clone());
                sent_any = true;
            }
            fresh_p.clear();
        }
        if !sent_any {
            break;
        }
        bus.step();
        rounds += 1;
        // Receive phase.
        for p in 0..n {
            let inbox = bus.recv(p);
            if byz.contains(&p) {
                continue;
            }
            for (_, packet) in inbox {
                for raw in packet {
                    let id = raw as usize;
                    if id < n && known[p].insert(id) {
                        fresh[p].push(id);
                    }
                }
            }
        }
    }

    ledger.add_messages(units);
    ledger.add_rounds(rounds);
    ledger.end();

    let complete = (0..n)
        .filter(|p| !byz.contains(p))
        .all(|p| known[p].len() == n);
    DiscoveryOutcome {
        known,
        rounds,
        message_units: units,
        complete,
    }
}

/// Result of the clusterization sub-phase.
#[derive(Debug, Clone)]
pub struct ClusterizeOutcome {
    /// `assignment[p]` = index of the cluster port `p` belongs to.
    pub assignment: Vec<usize>,
    /// Number of clusters formed.
    pub cluster_count: usize,
    /// The committee ports.
    pub committee: Vec<usize>,
    /// The agreed random seed driving the partition.
    pub seed: u64,
}

/// Runs the clusterization sub-phase among `n` ports with the given
/// Byzantine set: committee election (cost accounted per \[19\], outcome
/// inherited — see module docs), a *real* commit–reveal `randNum` among
/// the committee, a seed-driven random partition into clusters of
/// `target_size`, and the assignment broadcast. Costs are recorded under
/// [`CostKind::Clusterization`].
///
/// # Panics
/// Panics if `n == 0` or `target_size == 0`.
pub fn clusterize(
    n: usize,
    byz: &BTreeSet<usize>,
    target_size: usize,
    ledger: &mut Ledger,
    rng: &mut DetRng,
) -> ClusterizeOutcome {
    assert!(n > 0, "clusterize needs nodes");
    assert!(target_size > 0, "cluster target size must be positive");
    ledger.begin(CostKind::Clusterization);

    // Committee election: uniform draw (distribution certified by the
    // substituted BA of [19]); its Õ(n√n) message cost is accounted.
    let committee_size = target_size.min(n);
    let committee = sample_distinct(n, committee_size, rng);
    let election_cost = ((n as f64).powf(1.5) * (n.max(2) as f64).log2()).ceil() as u64;
    ledger.add_messages(election_cost);
    ledger.add_rounds((n.max(2) as f64).log2().ceil() as u64);

    // Committee-local ports for the real randNum run.
    let committee_byz: BTreeSet<usize> = committee
        .iter()
        .enumerate()
        .filter(|(_, &port)| byz.contains(&port))
        .map(|(local, _)| local)
        .collect();
    let result = rand_num_commit_reveal(
        committee.len(),
        u64::MAX,
        &committee_byz,
        ByzPlan::Silent,
        ledger,
        rng,
    );
    let seed = result
        .unanimous()
        .copied()
        .unwrap_or_else(|| result.decisions.values().next().copied().unwrap_or(0));

    // Seed-driven partition: every committee member derives the same
    // shuffle, so the assignment needs no further agreement.
    let mut order: Vec<usize> = (0..n).collect();
    let mut part_rng = DetRng::new(seed);
    shuffle(&mut order, &mut part_rng);
    let cluster_count = (n / target_size).max(1);
    let mut assignment = vec![0usize; n];
    for (pos, &port) in order.iter().enumerate() {
        assignment[port] = pos % cluster_count;
    }

    // Assignment broadcast: each committee member tells every node its
    // cluster and composition; receivers take the majority.
    ledger.add_messages(committee.len() as u64 * n as u64);
    ledger.add_rounds(2);

    ledger.end();
    ClusterizeOutcome {
        assignment,
        cluster_count,
        committee,
        seed,
    }
}

/// Full L0 initialization: discovery on `bootstrap`, clusterization, and
/// system construction. `corrupt[p]` is the adversary's choice for port
/// `p`. The resulting system's ledger carries the *measured* discovery
/// and clusterization costs.
///
/// # Errors
/// Returns [`NowError::BadParams`] if `bootstrap` is empty or
/// `corrupt.len()` does not match its vertex count.
pub fn init_discovered(
    params: NowParams,
    bootstrap: &Graph,
    corrupt: &[bool],
    seed: u64,
) -> Result<NowSystem, NowError> {
    let n = bootstrap.vertex_count();
    if n == 0 || corrupt.len() != n {
        return Err(NowError::BadParams {
            reason: format!(
                "bootstrap graph has {n} vertices but corruption vector has {}",
                corrupt.len()
            ),
        });
    }
    let byz: BTreeSet<usize> = (0..n).filter(|&p| corrupt[p]).collect();
    let mut ledger = Ledger::new();
    let mut rng = DetRng::new(seed);

    let discovery = discover(bootstrap, &byz, &mut ledger);
    if !discovery.complete {
        return Err(NowError::BadParams {
            reason: "discovery incomplete: honest nodes are not connected in the bootstrap graph"
                .to_string(),
        });
    }
    let outcome = clusterize(n, &byz, params.target_cluster_size(), &mut ledger, &mut rng);

    // Build the system from the measured assignment.
    let mut sys =
        NowSystem::init_with_corruption(params, corrupt, seed.wrapping_mul(31).wrapping_add(7));
    // Replace the fast path's synthetic partition with the measured one:
    // rebuild memberships according to `outcome.assignment`.
    let node_ids = sys.node_ids();
    let cluster_ids = sys.cluster_ids();
    if cluster_ids.len() == outcome.cluster_count {
        for (port, &node) in node_ids.iter().enumerate() {
            let target = cluster_ids[outcome.assignment[port]];
            sys.move_node(node, target);
        }
    }
    // Swap in the measured initialization ledger (the fast path's
    // synthetic init costs are replaced by the real ones).
    *sys.ledger_mut() = ledger;
    Ok(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_graph::gen;
    use now_graph::traversal::{diameter, is_connected};
    use now_net::DetRng;

    fn er_bootstrap(n: usize, seed: u64) -> Graph {
        let mut rng = DetRng::new(seed);
        // Dense enough that the honest subgraph stays connected.
        gen::erdos_renyi(n, 0.2, &mut rng)
    }

    #[test]
    fn discovery_completes_on_connected_graph() {
        let g = er_bootstrap(60, 1);
        assert!(is_connected(&g));
        let mut ledger = Ledger::new();
        let out = discover(&g, &BTreeSet::new(), &mut ledger);
        assert!(out.complete);
        for k in &out.known {
            assert_eq!(k.len(), 60);
        }
    }

    #[test]
    fn discovery_rounds_bounded_by_diameter() {
        let g = er_bootstrap(80, 2);
        let d = diameter(&g).unwrap() as u64;
        let mut ledger = Ledger::new();
        let out = discover(&g, &BTreeSet::new(), &mut ledger);
        assert!(
            out.rounds <= d + 2,
            "rounds {} exceed diameter {} + 2",
            out.rounds,
            d
        );
    }

    #[test]
    fn discovery_units_scale_with_n_times_e() {
        let g = er_bootstrap(80, 3);
        let bound = 2 * g.vertex_count() as u64 * g.edge_count() as u64;
        let mut ledger = Ledger::new();
        let out = discover(&g, &BTreeSet::new(), &mut ledger);
        assert!(
            out.message_units <= bound,
            "units {} exceed 2·n·e = {bound}",
            out.message_units
        );
        // And at least every identity crossed some edges.
        assert!(out.message_units >= g.vertex_count() as u64);
        let s = ledger.stats(CostKind::Discovery);
        assert_eq!(s.total_messages, out.message_units);
    }

    #[test]
    fn discovery_with_silent_byzantines_still_completes() {
        // Dense ER: removing 20% of relays keeps the honest subgraph
        // connected (whp at this density).
        let g = er_bootstrap(80, 4);
        let byz: BTreeSet<usize> = (0..16).collect();
        let honest_sub = {
            let mut h = Graph::new(80);
            for (u, v) in g.edges() {
                if !byz.contains(&u) && !byz.contains(&v) {
                    h.add_edge(u, v);
                }
            }
            h
        };
        // Precondition of the paper's model: honest nodes connected.
        let honest_ports: Vec<usize> = (16..80).collect();
        let dist = now_graph::traversal::bfs_distances(&honest_sub, honest_ports[0]);
        assert!(honest_ports.iter().all(|&p| dist[p] != usize::MAX));

        let mut ledger = Ledger::new();
        let out = discover(&g, &byz, &mut ledger);
        assert!(out.complete, "honest nodes must still learn everyone");
    }

    #[test]
    fn discovery_incomplete_when_honest_cut() {
        // Path graph with a byzantine cut vertex in the middle.
        let g = gen::path(9);
        let byz: BTreeSet<usize> = [4].into_iter().collect();
        let mut ledger = Ledger::new();
        let out = discover(&g, &byz, &mut ledger);
        assert!(!out.complete, "silent cut vertex blocks flooding");
    }

    #[test]
    fn clusterize_partitions_evenly() {
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(5);
        let out = clusterize(100, &BTreeSet::new(), 20, &mut ledger, &mut rng);
        assert_eq!(out.cluster_count, 5);
        let mut sizes = vec![0usize; 5];
        for &a in &out.assignment {
            sizes[a] += 1;
        }
        assert!(sizes.iter().all(|&s| s == 20), "{sizes:?}");
        assert_eq!(out.committee.len(), 20);
        let s = ledger.stats(CostKind::Clusterization);
        assert_eq!(s.count, 1);
        assert!(s.total_messages > 0);
    }

    #[test]
    fn clusterize_is_deterministic_per_rng() {
        let mut l1 = Ledger::new();
        let mut l2 = Ledger::new();
        let a = clusterize(60, &BTreeSet::new(), 15, &mut l1, &mut DetRng::new(6));
        let b = clusterize(60, &BTreeSet::new(), 15, &mut l2, &mut DetRng::new(6));
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.seed, b.seed);
    }

    #[test]
    fn clusterize_with_byzantine_committee_members() {
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(7);
        let byz: BTreeSet<usize> = (0..20).collect(); // 20% of 100
        let out = clusterize(100, &byz, 20, &mut ledger, &mut rng);
        // Silent byzantine committee members cannot block the seed.
        assert_eq!(out.assignment.len(), 100);
        assert_eq!(out.cluster_count, 5);
    }

    #[test]
    fn init_discovered_builds_consistent_system() {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let g = er_bootstrap(80, 8);
        let corrupt: Vec<bool> = (0..80).map(|i| i % 5 == 0).collect();
        let sys = init_discovered(params, &g, &corrupt, 9).unwrap();
        sys.check_consistency().unwrap();
        assert_eq!(sys.population(), 80);
        assert_eq!(sys.byz_population(), 16);
        // Measured costs present.
        assert!(sys.ledger().stats(CostKind::Discovery).total_messages > 0);
        assert!(sys.ledger().stats(CostKind::Clusterization).total_messages > 0);
    }

    #[test]
    fn init_discovered_rejects_mismatched_inputs() {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let g = er_bootstrap(10, 10);
        let corrupt = vec![false; 5];
        assert!(init_discovered(params, &g, &corrupt, 1).is_err());
    }

    #[test]
    fn init_discovered_rejects_disconnected_bootstrap() {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let mut g = Graph::new(40);
        g.add_edge(0, 1); // the rest are isolated
        let corrupt = vec![false; 40];
        let err = init_discovered(params, &g, &corrupt, 2).unwrap_err();
        assert!(err.to_string().contains("discovery incomplete"));
    }
}
