//! The adversary's in-protocol leverage.
//!
//! The static adversary corrupts nodes; what those nodes can *do* inside
//! the protocol is bounded by cluster composition:
//!
//! * Byzantine ≥ 1/3 of a cluster ⇒ `randNum` there is compromised, so
//!   the adversary steers every choice that cluster makes
//!   collaboratively — walk hops, exchange victims, split partitions.
//! * Byzantine > 1/2 ⇒ the cluster's outgoing messages can be forged
//!   outright (the quorum rule is cleared by the adversary alone).
//!
//! [`Malice`] is the hook the system consults at those moments. In the
//! Theorem-3 regime the hooks are never reachable (no cluster crosses
//! 1/3 whp) — the audits check exactly that — but the *baselines*
//! (no-shuffle clustering) and the attack experiments rely on them.
//!
//! `now-adversary` provides strategic implementations; [`NoMalice`] is
//! the neutral default (uniformly random choices, i.e. a compromised
//! cluster that happens not to coordinate).

use now_net::{ClusterId, DetRng, NodeId};
use rand::Rng;

/// What a `randNum` invocation is *for* — a strategic adversary plays
/// each purpose differently (e.g. it accepts walks that end at its
/// target cluster and rejects them elsewhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandNumPurpose {
    /// Drawing the CTRW's exponential holding time at a cluster.
    WalkHoldingTime,
    /// Choosing the CTRW's next neighbor.
    WalkNeighborChoice,
    /// The size-biased acceptance test at a walk endpoint (small draws
    /// accept, large draws reject and restart the walk).
    WalkAcceptance,
    /// Selecting a member index (exchange replacements, sampling).
    MemberIndex,
    /// Seeding a split's random partition.
    SplitSeed,
    /// Anything else (application-level draws).
    Generic,
}

/// Where and why a compromised `randNum` is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandNumContext {
    /// The cluster executing the primitive.
    pub cluster: ClusterId,
    /// What the draw decides.
    pub purpose: RandNumPurpose,
}

/// Decisions delegated to the adversary when a cluster is compromised.
///
/// Implementations receive the full state the paper's full-information
/// adversary is entitled to (it "knows the position of any node at any
/// time"); the simulator passes what each decision needs.
pub trait Malice {
    /// Output of a compromised `randNum` over `0..range`.
    fn rand_num(&mut self, range: u64, ctx: RandNumContext, rng: &mut DetRng) -> u64;

    /// Next hop chosen by a compromised cluster during a CTRW (`None`
    /// lets the walk proceed honestly). `neighbors` are the legal hops.
    fn walk_hop(&mut self, neighbors: &[ClusterId], rng: &mut DetRng) -> Option<ClusterId>;

    /// Which member a compromised cluster surrenders in an exchange
    /// (`None` = honest uniform choice). `members` come with the
    /// adversary's ground-truth knowledge of honesty.
    fn exchange_victim(&mut self, members: &[(NodeId, bool)], rng: &mut DetRng) -> Option<NodeId>;

    /// Whether this adversary is behaviorally identical to [`NoMalice`]
    /// (uniform `rand_num`, no hop forcing, no victim forcing).
    ///
    /// The threaded wave executor plans a wave's operations on worker
    /// threads only when this returns `true`: a strategic adversary is
    /// a single *stateful* oracle whose hook-call order is part of the
    /// protocol semantics, so its batches are planned sequentially in
    /// canonical order instead (same results at every thread count,
    /// just no planning concurrency). Defaults to `false`; only
    /// implementations that are genuinely stateless and neutral should
    /// override it.
    fn is_neutral(&self) -> bool {
        false
    }
}

/// Neutral adversary: compromised clusters behave like honest ones with
/// private randomness (uniform draws). Useful as the default and as a
/// control in experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMalice;

impl Malice for NoMalice {
    fn rand_num(&mut self, range: u64, _ctx: RandNumContext, rng: &mut DetRng) -> u64 {
        rng.gen_range(0..range.max(1))
    }

    fn walk_hop(&mut self, _neighbors: &[ClusterId], _rng: &mut DetRng) -> Option<ClusterId> {
        None
    }

    fn exchange_victim(
        &mut self,
        _members: &[(NodeId, bool)],
        _rng: &mut DetRng,
    ) -> Option<NodeId> {
        None
    }

    fn is_neutral(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> RandNumContext {
        RandNumContext {
            cluster: ClusterId::from_raw(0),
            purpose: RandNumPurpose::Generic,
        }
    }

    #[test]
    fn no_malice_is_neutral() {
        let mut m = NoMalice;
        let mut rng = DetRng::new(1);
        let v = m.rand_num(10, ctx(), &mut rng);
        assert!(v < 10);
        assert_eq!(m.walk_hop(&[ClusterId::from_raw(0)], &mut rng), None);
        assert_eq!(
            m.exchange_victim(&[(NodeId::from_raw(0), true)], &mut rng),
            None
        );
    }

    #[test]
    fn no_malice_handles_zero_range() {
        let mut m = NoMalice;
        let mut rng = DetRng::new(2);
        assert_eq!(m.rand_num(0, ctx(), &mut rng), 0, "clamped range");
    }

    #[test]
    fn no_malice_ignores_purpose() {
        let mut m = NoMalice;
        let mut rng = DetRng::new(4);
        for purpose in [
            RandNumPurpose::WalkAcceptance,
            RandNumPurpose::WalkHoldingTime,
            RandNumPurpose::SplitSeed,
        ] {
            let c = RandNumContext {
                cluster: ClusterId::from_raw(1),
                purpose,
            };
            assert!(m.rand_num(10, c, &mut rng) < 10);
        }
    }

    #[test]
    fn malice_is_object_safe() {
        let mut boxed: Box<dyn Malice> = Box::new(NoMalice);
        let mut rng = DetRng::new(3);
        assert!(boxed.rand_num(5, ctx(), &mut rng) < 5);
    }
}
