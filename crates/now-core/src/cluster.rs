//! Cluster state: membership and composition bookkeeping.

use crate::params::SecurityMode;
use now_net::{ClusterId, NodeId};

/// One NOW cluster: a vertex of the overlay and a set of member nodes.
///
/// Members live in one sorted, contiguous `Vec<NodeId>` — membership is
/// a binary search, iteration is a cache-line walk, and `member_at` is
/// a direct index (the wave planner draws exchange victims by index on
/// every operation). Clusters are polylog-sized, so the `O(size)`
/// shifts on insert/remove stay well under the pointer-chasing cost of
/// the `BTreeSet` layout this replaced.
///
/// The cluster caches its Byzantine member count so the audits — which
/// run after every operation in long experiments — cost O(1). The cache
/// is maintained by the membership mutators, which take the member's
/// honesty as an argument (the *simulator* knows honesty; the protocol
/// itself never reads it except through the ideal-functionality
/// thresholds documented in [`crate::Malice`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    id: ClusterId,
    /// Sorted ascending; the invariant every method below preserves.
    members: Vec<NodeId>,
    byz_count: usize,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new(id: ClusterId) -> Self {
        Cluster {
            id,
            members: Vec::new(),
            byz_count: 0,
        }
    }

    /// The cluster's overlay vertex id.
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of Byzantine members.
    pub fn byz_count(&self) -> usize {
        self.byz_count
    }

    /// Number of honest members.
    pub fn honest_count(&self) -> usize {
        self.members.len() - self.byz_count
    }

    /// Fraction of Byzantine members (0 for an empty cluster).
    pub fn byz_fraction(&self) -> f64 {
        if self.members.is_empty() {
            0.0
        } else {
            self.byz_count as f64 / self.members.len() as f64
        }
    }

    /// Whether `randNum` is secure here under the paper's main model
    /// (Byzantine < 1/3 of members). Mode-aware variant:
    /// [`Cluster::rand_num_secure_in`].
    pub fn rand_num_secure(&self) -> bool {
        self.rand_num_secure_in(SecurityMode::Plain)
    }

    /// Whether `randNum` is secure here under the given substrate mode
    /// (Byzantine < 1/3 in [`SecurityMode::Plain`], < 1/2 in
    /// [`SecurityMode::Authenticated`] — Remark 1).
    pub fn rand_num_secure_in(&self, mode: SecurityMode) -> bool {
        !self.members.is_empty() && mode.rand_num_secure(self.byz_count, self.members.len())
    }

    /// Whether the adversary alone clears the quorum rule (> 1/2).
    /// Signatures do not change this: honest members never co-sign a
    /// forged message, so forgery needs a Byzantine strict majority in
    /// both modes.
    pub fn forgeable(&self) -> bool {
        !self.members.is_empty() && self.byz_count > self.members.len() / 2
    }

    /// The paper's headline invariant: strictly more than two thirds of
    /// the members are honest. Mode-aware variant:
    /// [`Cluster::invariant_holds_in`].
    pub fn two_thirds_honest(&self) -> bool {
        3 * self.honest_count() > 2 * self.members.len()
    }

    /// Whether this cluster satisfies the target invariant of the given
    /// mode: > 2/3 honest in [`SecurityMode::Plain`], an honest strict
    /// majority in [`SecurityMode::Authenticated`].
    pub fn invariant_holds_in(&self, mode: SecurityMode) -> bool {
        mode.invariant_holds(self.honest_count(), self.members.len())
    }

    /// Membership test (binary search over the sorted member vec).
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// Iterates members in id order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// Members in id order, borrowed — the zero-copy view for read-only
    /// walks (planner views, audits, quorum checks).
    pub fn member_slice(&self) -> &[NodeId] {
        &self.members
    }

    /// Members as an owned, id-ordered vector (snapshot for iteration
    /// while mutating).
    pub fn member_vec(&self) -> Vec<NodeId> {
        self.members.clone()
    }

    /// Adds a member; `honest` is the simulator's ground truth. Returns
    /// `false` (and changes nothing) if already present.
    pub fn insert(&mut self, node: NodeId, honest: bool) -> bool {
        match self.members.binary_search(&node) {
            Ok(_) => false,
            Err(pos) => {
                self.members.insert(pos, node);
                if !honest {
                    self.byz_count += 1;
                }
                true
            }
        }
    }

    /// Removes a member; `honest` must match the flag used at insertion.
    /// Returns `false` if the node was not a member.
    pub fn remove(&mut self, node: NodeId, honest: bool) -> bool {
        match self.members.binary_search(&node) {
            Ok(pos) => {
                self.members.remove(pos);
                if !honest {
                    self.byz_count -= 1;
                }
                true
            }
            Err(_) => false,
        }
    }

    /// The member at `index` in id order (a direct index into the
    /// sorted member vec).
    ///
    /// # Panics
    /// Panics if `index ≥ size()`.
    pub fn member_at(&self, index: usize) -> NodeId {
        self.members[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(raw: u64) -> NodeId {
        NodeId::from_raw(raw)
    }

    #[test]
    fn insert_remove_maintain_counts() {
        let mut c = Cluster::new(ClusterId::from_raw(0));
        assert!(c.insert(nid(0), true));
        assert!(c.insert(nid(1), false));
        assert!(c.insert(nid(2), false));
        assert!(!c.insert(nid(2), false), "duplicate insert rejected");
        assert_eq!(c.size(), 3);
        assert_eq!(c.byz_count(), 2);
        assert_eq!(c.honest_count(), 1);
        assert!(c.remove(nid(1), false));
        assert!(!c.remove(nid(1), false), "double remove rejected");
        assert_eq!(c.byz_count(), 1);
        assert_eq!(c.size(), 2);
    }

    #[test]
    fn fractions_and_thresholds() {
        let mut c = Cluster::new(ClusterId::from_raw(1));
        for i in 0..9 {
            c.insert(nid(i), i >= 2); // 2 byzantine of 9
        }
        assert!((c.byz_fraction() - 2.0 / 9.0).abs() < 1e-12);
        assert!(c.rand_num_secure(), "2 < 9/3");
        assert!(!c.forgeable());
        assert!(c.two_thirds_honest());

        c.insert(nid(100), false); // 3 of 10
        assert!(c.rand_num_secure(), "3 < 10/3? 9 < 10 yes");
        c.insert(nid(101), false); // 4 of 11
        assert!(!c.rand_num_secure(), "12 ≥ 11");
        assert!(!c.two_thirds_honest(), "7 honest of 11: 21 < 22");
    }

    #[test]
    fn two_thirds_boundary() {
        let mut c = Cluster::new(ClusterId::from_raw(2));
        // 6 honest, 3 byzantine: exactly 2/3 honest — NOT strictly more.
        for i in 0..6 {
            c.insert(nid(i), true);
        }
        for i in 6..9 {
            c.insert(nid(i), false);
        }
        assert!(!c.two_thirds_honest(), "exactly 2/3 fails the strict bound");
        c.insert(nid(9), true); // 7 of 10
        assert!(c.two_thirds_honest());
    }

    #[test]
    fn forgery_threshold() {
        let mut c = Cluster::new(ClusterId::from_raw(3));
        for i in 0..4 {
            c.insert(nid(i), i >= 2); // 2 byz of 4
        }
        assert!(!c.forgeable(), "2 of 4 is only half");
        c.insert(nid(4), false); // 3 byz of 5
        assert!(c.forgeable());
    }

    #[test]
    fn empty_cluster_degenerates_safely() {
        let c = Cluster::new(ClusterId::from_raw(4));
        assert!(c.is_empty());
        assert_eq!(c.byz_fraction(), 0.0);
        assert!(!c.forgeable());
        assert!(!c.rand_num_secure(), "0 < 0 is false — vacuously insecure");
    }

    #[test]
    fn mode_aware_thresholds() {
        let mut c = Cluster::new(ClusterId::from_raw(6));
        // 6 honest, 4 byzantine of 10.
        for i in 0..6 {
            c.insert(nid(i), true);
        }
        for i in 6..10 {
            c.insert(nid(i), false);
        }
        assert!(!c.rand_num_secure_in(SecurityMode::Plain), "4 ≥ 10/3");
        assert!(
            c.rand_num_secure_in(SecurityMode::Authenticated),
            "4 < 10/2"
        );
        assert!(!c.invariant_holds_in(SecurityMode::Plain), "6/10 ≤ 2/3");
        assert!(
            c.invariant_holds_in(SecurityMode::Authenticated),
            "6/10 > 1/2"
        );
        // 5 of 10: even the authenticated invariant fails.
        c.remove(nid(0), true);
        c.insert(nid(10), false);
        assert!(!c.invariant_holds_in(SecurityMode::Authenticated));
        assert!(!c.rand_num_secure_in(SecurityMode::Authenticated));
    }

    #[test]
    fn plain_shorthand_matches_mode_call() {
        let mut c = Cluster::new(ClusterId::from_raw(7));
        for i in 0..9 {
            c.insert(nid(i), i >= 2);
        }
        assert_eq!(
            c.rand_num_secure(),
            c.rand_num_secure_in(SecurityMode::Plain)
        );
        assert_eq!(
            c.two_thirds_honest(),
            c.invariant_holds_in(SecurityMode::Plain)
        );
    }

    #[test]
    fn member_at_in_id_order() {
        let mut c = Cluster::new(ClusterId::from_raw(5));
        c.insert(nid(30), true);
        c.insert(nid(10), true);
        c.insert(nid(20), true);
        assert_eq!(c.member_at(0), nid(10));
        assert_eq!(c.member_at(2), nid(30));
    }
}
