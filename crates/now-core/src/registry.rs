//! Sharded membership registry.
//!
//! The membership state of a NOW deployment used to live in two
//! monolithic `BTreeMap`s inside [`crate::NowSystem`] — one global
//! node → record map and one cluster map. Both become contention points
//! for populations ≥ 10⁶ (every operation funnels through the same
//! tree), so this module replaces them with a [`Registry`] that
//! distributes the state over fixed shard arrays:
//!
//! * **cluster shards** — the membership store proper, sharded by
//!   [`ClusterId`]: each shard holds the [`Cluster`] objects (member
//!   sets plus cached Byzantine counts) whose id hashes to it. Two
//!   operations whose cluster footprints are disjoint (see
//!   [`crate::BatchReport`]) touch disjoint shard entries, which is what
//!   makes the conflict-free parallel waves of
//!   [`crate::NowSystem::step_parallel`] meaningful as a deployment
//!   model.
//! * **node shards** — the node index, sharded by [`NodeId`]: resolves
//!   `node → (honesty, home cluster)` without walking the cluster
//!   partition.
//! * **exact aggregates** — a global population counter, a global
//!   Byzantine counter, and a sorted cluster-id cache, all maintained
//!   incrementally, so `population()` / `byz_population()` /
//!   `cluster_ids()` are O(1)-ish instead of O(n) scans.
//!
//! Per-cluster size and honest-member counts are O(1) after locating the
//! cluster's shard entry ([`Registry::cluster_stats`]) because
//! [`Cluster`] caches its Byzantine count.
//!
//! Every mutation goes through the registry ([`Registry::attach`],
//! [`Registry::detach`], [`Registry::move_to`]), which keeps the node
//! index, the member sets, and the aggregate counters in lockstep;
//! [`Registry::check_invariants`] re-derives all of them from scratch
//! and is run by `NowSystem::check_consistency` after every operation in
//! the test suites, so the sharding is *exact*, not approximate.

use crate::cluster::Cluster;
use now_net::{ClusterId, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

/// Number of node-index shards (power of two; ids are sequential, so a
/// modulo spreads them uniformly).
const NODE_SHARDS: usize = 64;
/// Number of cluster-store shards.
const CLUSTER_SHARDS: usize = 16;

/// One node's registry entry: the simulator's ground-truth honesty flag
/// and the cluster the node currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRecord {
    /// Ground-truth honesty (the protocol itself never reads this except
    /// through the ideal-functionality thresholds of [`crate::Malice`]).
    pub honest: bool,
    /// Home cluster.
    pub cluster: ClusterId,
}

/// O(1) per-cluster aggregate: member count and honest-member count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Total members.
    pub size: usize,
    /// Honest members.
    pub honest: usize,
}

impl ClusterStats {
    /// Byzantine members.
    pub fn byz(&self) -> usize {
        self.size - self.honest
    }
}

/// The sharded membership store (see the module docs).
#[derive(Debug, Clone)]
pub struct Registry {
    node_shards: Vec<BTreeMap<NodeId, NodeRecord>>,
    cluster_shards: Vec<BTreeMap<ClusterId, Cluster>>,
    /// All live cluster ids, sorted ascending (kept exact on
    /// insert/remove; O(#C) memmove there buys O(1) random access and
    /// allocation-free iteration everywhere else).
    sorted_clusters: Vec<ClusterId>,
    population: u64,
    byz_population: u64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// K-way merge of already-sorted id streams (one per shard) into one
/// ascending vector.
fn merge_sorted<I>(streams: Vec<I>, capacity: usize) -> Vec<NodeId>
where
    I: Iterator<Item = NodeId>,
{
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut iters: Vec<std::iter::Peekable<I>> =
        streams.into_iter().map(Iterator::peekable).collect();
    let mut heap: BinaryHeap<Reverse<(NodeId, usize)>> = iters
        .iter_mut()
        .enumerate()
        .filter_map(|(i, it)| it.peek().map(|&id| Reverse((id, i))))
        .collect();
    let mut out = Vec::with_capacity(capacity);
    while let Some(Reverse((id, i))) = heap.pop() {
        out.push(id);
        iters[i].next();
        if let Some(&next) = iters[i].peek() {
            heap.push(Reverse((next, i)));
        }
    }
    out
}

impl Registry {
    /// An empty registry with the default shard counts.
    pub fn new() -> Self {
        Registry {
            node_shards: (0..NODE_SHARDS).map(|_| BTreeMap::new()).collect(),
            cluster_shards: (0..CLUSTER_SHARDS).map(|_| BTreeMap::new()).collect(),
            sorted_clusters: Vec::new(),
            population: 0,
            byz_population: 0,
        }
    }

    #[inline]
    fn node_shard_of(node: NodeId) -> usize {
        (node.raw() % NODE_SHARDS as u64) as usize
    }

    #[inline]
    fn cluster_shard_of(cluster: ClusterId) -> usize {
        (cluster.raw() % CLUSTER_SHARDS as u64) as usize
    }

    // ------------------------------------------------------------------
    // Aggregates.
    // ------------------------------------------------------------------

    /// Current population (exact counter, O(1)).
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Current Byzantine population (exact counter, O(1)).
    pub fn byz_population(&self) -> u64 {
        self.byz_population
    }

    /// Whether no node is registered.
    pub fn is_empty(&self) -> bool {
        self.population == 0
    }

    /// Number of node-index shards (for scaling diagnostics).
    pub fn node_shard_count(&self) -> usize {
        self.node_shards.len()
    }

    /// Number of cluster-store shards.
    pub fn cluster_shard_count(&self) -> usize {
        self.cluster_shards.len()
    }

    // ------------------------------------------------------------------
    // Node index.
    // ------------------------------------------------------------------

    /// The record of a live node.
    pub fn get(&self, node: NodeId) -> Option<NodeRecord> {
        self.node_shards[Self::node_shard_of(node)]
            .get(&node)
            .copied()
    }

    /// Whether the node is registered.
    pub fn contains(&self, node: NodeId) -> bool {
        self.node_shards[Self::node_shard_of(node)].contains_key(&node)
    }

    /// All node ids, ascending: a k-way merge of the shards' already
    /// sorted key streams (O(n log S) for S shards — cheaper than
    /// re-sorting, and this sits on the per-step churn-driver path).
    pub fn node_ids(&self) -> Vec<NodeId> {
        merge_sorted(
            self.node_shards.iter().map(|s| s.keys().copied()).collect(),
            self.population as usize,
        )
    }

    /// Ids of the Byzantine nodes, ascending (same k-way merge).
    pub fn byz_node_ids(&self) -> Vec<NodeId> {
        merge_sorted(
            self.node_shards
                .iter()
                .map(|s| s.iter().filter(|(_, r)| !r.honest).map(|(&id, _)| id))
                .collect(),
            self.byz_population as usize,
        )
    }

    // ------------------------------------------------------------------
    // Cluster store.
    // ------------------------------------------------------------------

    /// Creates an empty cluster.
    ///
    /// # Panics
    /// Panics if the id is already live.
    pub fn create_cluster(&mut self, id: ClusterId) {
        let prev = self.cluster_shards[Self::cluster_shard_of(id)].insert(id, Cluster::new(id));
        assert!(prev.is_none(), "cluster {id} created twice");
        let pos = self
            .sorted_clusters
            .binary_search(&id)
            .expect_err("id absent from sorted cache");
        self.sorted_clusters.insert(pos, id);
    }

    /// Removes a cluster from the store.
    ///
    /// # Panics
    /// Panics if the cluster still has members (detach or move them
    /// first) — removing a populated cluster would corrupt the counters.
    pub fn remove_cluster(&mut self, id: ClusterId) -> Option<Cluster> {
        let removed = self.cluster_shards[Self::cluster_shard_of(id)].remove(&id)?;
        assert!(
            removed.is_empty(),
            "cluster {id} removed while holding {} members",
            removed.size()
        );
        let pos = self
            .sorted_clusters
            .binary_search(&id)
            .expect("id present in sorted cache");
        self.sorted_clusters.remove(pos);
        Some(removed)
    }

    /// A cluster by id.
    pub fn cluster(&self, id: ClusterId) -> Option<&Cluster> {
        self.cluster_shards[Self::cluster_shard_of(id)].get(&id)
    }

    /// Whether the cluster is live.
    pub fn contains_cluster(&self, id: ClusterId) -> bool {
        self.cluster_shards[Self::cluster_shard_of(id)].contains_key(&id)
    }

    /// Number of live clusters.
    pub fn cluster_count(&self) -> usize {
        self.sorted_clusters.len()
    }

    /// Live cluster ids, ascending (cached; no allocation on the
    /// registry's side beyond the slice view).
    pub fn cluster_ids(&self) -> &[ClusterId] {
        &self.sorted_clusters
    }

    /// The `idx`-th live cluster id in ascending order (O(1); used by
    /// uniform contact-cluster draws).
    ///
    /// # Panics
    /// Panics if `idx ≥ cluster_count()`.
    pub fn cluster_id_at(&self, idx: usize) -> ClusterId {
        self.sorted_clusters[idx]
    }

    /// Iterates clusters in ascending id order.
    pub fn clusters(&self) -> impl Iterator<Item = &Cluster> {
        self.sorted_clusters
            .iter()
            .map(move |id| self.cluster(*id).expect("cached id is live"))
    }

    /// Per-cluster size / honest-count aggregate, O(1) after the shard
    /// lookup ([`Cluster`] caches its Byzantine count).
    pub fn cluster_stats(&self, id: ClusterId) -> Option<ClusterStats> {
        self.cluster(id).map(|c| ClusterStats {
            size: c.size(),
            honest: c.honest_count(),
        })
    }

    // ------------------------------------------------------------------
    // Membership mutations (the only writers of the aggregates).
    // ------------------------------------------------------------------

    /// Registers `node` as a member of `cluster`.
    ///
    /// # Panics
    /// Panics if the node is already registered or the cluster is not
    /// live.
    pub fn attach(&mut self, node: NodeId, honest: bool, cluster: ClusterId) {
        let shard = Self::cluster_shard_of(cluster);
        let c = self.cluster_shards[shard]
            .get_mut(&cluster)
            .unwrap_or_else(|| panic!("attach into dead cluster {cluster}"));
        assert!(c.insert(node, honest), "{node} already in {cluster}");
        let prev = self.node_shards[Self::node_shard_of(node)]
            .insert(node, NodeRecord { honest, cluster });
        assert!(prev.is_none(), "{node} attached twice");
        self.population += 1;
        if !honest {
            self.byz_population += 1;
        }
    }

    /// Unregisters `node`; returns its final record.
    pub fn detach(&mut self, node: NodeId) -> Option<NodeRecord> {
        let record = self.node_shards[Self::node_shard_of(node)].remove(&node)?;
        let shard = Self::cluster_shard_of(record.cluster);
        let c = self.cluster_shards[shard]
            .get_mut(&record.cluster)
            .expect("record points at a live cluster");
        assert!(c.remove(node, record.honest), "member set drifted");
        self.population -= 1;
        if !record.honest {
            self.byz_population -= 1;
        }
        Some(record)
    }

    /// Moves `node` to cluster `to` (no-op if already there); returns
    /// the previous home, or `None` if the node is unknown.
    ///
    /// # Panics
    /// Panics if `to` is not a live cluster.
    pub fn move_to(&mut self, node: NodeId, to: ClusterId) -> Option<ClusterId> {
        let node_shard = Self::node_shard_of(node);
        let record = *self.node_shards[node_shard].get(&node)?;
        if record.cluster == to {
            return Some(record.cluster);
        }
        let from_shard = Self::cluster_shard_of(record.cluster);
        let from = self.cluster_shards[from_shard]
            .get_mut(&record.cluster)
            .expect("record points at a live cluster");
        assert!(from.remove(node, record.honest), "member set drifted");
        let to_shard = Self::cluster_shard_of(to);
        let dest = self.cluster_shards[to_shard]
            .get_mut(&to)
            .unwrap_or_else(|| panic!("move into dead cluster {to}"));
        assert!(dest.insert(node, record.honest), "{node} already in {to}");
        self.node_shards[node_shard]
            .get_mut(&node)
            .expect("checked above")
            .cluster = to;
        Some(record.cluster)
    }

    // ------------------------------------------------------------------
    // Exactness.
    // ------------------------------------------------------------------

    /// Re-derives every aggregate and cross-checks shard routing, the
    /// node index, the member sets, the cached Byzantine counts, the
    /// sorted cluster cache, and the global counters. O(n + #C).
    ///
    /// # Errors
    /// A human-readable description of the first inconsistency found.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Node index: routing + record targets.
        let mut seen_nodes = 0u64;
        let mut seen_byz = 0u64;
        for (i, shard) in self.node_shards.iter().enumerate() {
            for (&node, record) in shard {
                if Self::node_shard_of(node) != i {
                    return Err(format!("{node} routed to wrong node shard {i}"));
                }
                let Some(cluster) = self.cluster(record.cluster) else {
                    return Err(format!("{node} points at dead cluster {}", record.cluster));
                };
                if !cluster.contains(node) {
                    return Err(format!(
                        "{node} missing from its cluster {}",
                        record.cluster
                    ));
                }
                seen_nodes += 1;
                if !record.honest {
                    seen_byz += 1;
                }
            }
        }
        if seen_nodes != self.population {
            return Err(format!(
                "population counter drift: counted {seen_nodes}, cached {}",
                self.population
            ));
        }
        if seen_byz != self.byz_population {
            return Err(format!(
                "byz counter drift: counted {seen_byz}, cached {}",
                self.byz_population
            ));
        }

        // Cluster store: routing + member sets + byz caches.
        let mut memberships = 0u64;
        let mut cluster_total = 0usize;
        for (i, shard) in self.cluster_shards.iter().enumerate() {
            for (&cid, cluster) in shard {
                if Self::cluster_shard_of(cid) != i {
                    return Err(format!("cluster {cid} routed to wrong shard {i}"));
                }
                if cluster.id() != cid {
                    return Err(format!("cluster id mismatch at {cid}"));
                }
                if self.sorted_clusters.binary_search(&cid).is_err() {
                    return Err(format!("cluster {cid} missing from sorted cache"));
                }
                let mut byz = 0usize;
                for m in cluster.members() {
                    let Some(rec) = self.get(m) else {
                        return Err(format!("{m} in cluster {cid} but not in node index"));
                    };
                    if rec.cluster != cid {
                        return Err(format!("{m} node index points elsewhere than {cid}"));
                    }
                    if !rec.honest {
                        byz += 1;
                    }
                    memberships += 1;
                }
                if byz != cluster.byz_count() {
                    return Err(format!(
                        "byz cache drift in {cid}: cached {}, actual {byz}",
                        cluster.byz_count()
                    ));
                }
                cluster_total += 1;
            }
        }
        if memberships != self.population {
            return Err(format!(
                "membership drift: {memberships} memberships vs {} index entries",
                self.population
            ));
        }
        if cluster_total != self.sorted_clusters.len() {
            return Err(format!(
                "sorted cache size drift: {} cached vs {cluster_total} stored",
                self.sorted_clusters.len()
            ));
        }
        if self.sorted_clusters.windows(2).any(|w| w[0] >= w[1]) {
            return Err("sorted cluster cache out of order".to_string());
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Wave-scoped shard access.
    // ------------------------------------------------------------------

    /// Splits the registry into per-shard-locked slices for the
    /// duration of one conflict-free wave (see [`WaveShards`]).
    ///
    /// While the facade is alive the registry itself is mutably
    /// borrowed, so the aggregate counters and the sorted cluster cache
    /// are frozen; mutations made through the shards accumulate
    /// population/Byzantine *deltas* which the caller folds back with
    /// [`Registry::apply_wave_deltas`] once the facade is dropped.
    /// Cluster creation/removal is deliberately not offered — wave
    /// execution defers split/merge maintenance to its canonical serial
    /// phase.
    pub fn wave_shards(&mut self) -> WaveShards<'_> {
        WaveShards {
            clusters: self.cluster_shards.iter_mut().map(Mutex::new).collect(),
            nodes: self.node_shards.iter_mut().map(Mutex::new).collect(),
            pop_delta: AtomicI64::new(0),
            byz_delta: AtomicI64::new(0),
        }
    }

    /// Folds the population/Byzantine deltas of a completed wave (from
    /// [`WaveShards::deltas`]) back into the exact aggregate counters.
    ///
    /// # Panics
    /// Panics if a delta would drive a counter negative — that would
    /// mean the wave detached nodes that never existed.
    pub fn apply_wave_deltas(&mut self, pop_delta: i64, byz_delta: i64) {
        self.population = self
            .population
            .checked_add_signed(pop_delta)
            .expect("population counter underflow");
        self.byz_population = self
            .byz_population
            .checked_add_signed(byz_delta)
            .expect("byz counter underflow");
    }
}

/// Per-shard-lock facade over the registry for one conflict-free wave.
///
/// Obtained from [`Registry::wave_shards`]. Each cluster shard and each
/// node-index shard sits behind its own [`Mutex`], so mutations of
/// *different* clusters proceed without contention even when their ids
/// (or their members' ids) hash to the same shard. The concurrency
/// contract is the wave contract itself: every node is touched by at
/// most one handle, and every cluster entry is mutated by at most one
/// handle — pairwise footprint-disjointness gives exactly that, which
/// is what makes the final shard contents independent of thread
/// interleaving (`BTreeMap` contents are a function of the surviving
/// key set, not of insertion order).
///
/// [`WaveShards::handle`] scopes a mutator to one operation's cluster
/// footprint and `debug_assert`s that it never escapes it; the
/// unconfined `*_any` methods exist for the executor's canonical serial
/// phase, where exchange relocations legitimately land outside every
/// footprint.
pub struct WaveShards<'a> {
    clusters: Vec<Mutex<&'a mut BTreeMap<ClusterId, Cluster>>>,
    nodes: Vec<Mutex<&'a mut BTreeMap<NodeId, NodeRecord>>>,
    pop_delta: AtomicI64,
    byz_delta: AtomicI64,
}

impl<'a> WaveShards<'a> {
    /// A mutator confined (by debug assertions) to `footprint`.
    pub fn handle(&self, footprint: &[ClusterId]) -> FootprintHandle<'_, 'a> {
        FootprintHandle {
            shards: self,
            footprint: footprint.iter().copied().collect(),
        }
    }

    /// The record of a live node (locks one node shard briefly).
    pub fn node_record(&self, node: NodeId) -> Option<NodeRecord> {
        self.nodes[Registry::node_shard_of(node)]
            .lock()
            .expect("node shard poisoned")
            .get(&node)
            .copied()
    }

    /// Whether the cluster is live.
    pub fn contains_cluster(&self, cluster: ClusterId) -> bool {
        self.clusters[Registry::cluster_shard_of(cluster)]
            .lock()
            .expect("cluster shard poisoned")
            .contains_key(&cluster)
    }

    /// Per-cluster aggregate, as [`Registry::cluster_stats`].
    pub fn cluster_stats(&self, cluster: ClusterId) -> Option<ClusterStats> {
        self.clusters[Registry::cluster_shard_of(cluster)]
            .lock()
            .expect("cluster shard poisoned")
            .get(&cluster)
            .map(|c| ClusterStats {
                size: c.size(),
                honest: c.honest_count(),
            })
    }

    /// Unconfined attach (canonical serial phase only; see the type
    /// docs). Same invariant maintenance as [`Registry::attach`].
    ///
    /// # Panics
    /// Panics if the node is already registered or the cluster is dead.
    pub fn attach_any(&self, node: NodeId, honest: bool, cluster: ClusterId) {
        let mut node_shard = self.nodes[Registry::node_shard_of(node)]
            .lock()
            .expect("node shard poisoned");
        let mut cluster_shard = self.clusters[Registry::cluster_shard_of(cluster)]
            .lock()
            .expect("cluster shard poisoned");
        let c = cluster_shard
            .get_mut(&cluster)
            .unwrap_or_else(|| panic!("attach into dead cluster {cluster}"));
        assert!(c.insert(node, honest), "{node} already in {cluster}");
        let prev = node_shard.insert(node, NodeRecord { honest, cluster });
        assert!(prev.is_none(), "{node} attached twice");
        self.pop_delta.fetch_add(1, Ordering::Relaxed);
        if !honest {
            self.byz_delta.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Unconfined detach; returns the node's final record, or `None` if
    /// it was not registered.
    pub fn detach_any(&self, node: NodeId) -> Option<NodeRecord> {
        let mut node_shard = self.nodes[Registry::node_shard_of(node)]
            .lock()
            .expect("node shard poisoned");
        let record = node_shard.remove(&node)?;
        let mut cluster_shard = self.clusters[Registry::cluster_shard_of(record.cluster)]
            .lock()
            .expect("cluster shard poisoned");
        let c = cluster_shard
            .get_mut(&record.cluster)
            .expect("record points at a live cluster");
        assert!(c.remove(node, record.honest), "member set drifted");
        self.pop_delta.fetch_add(-1, Ordering::Relaxed);
        if !record.honest {
            self.byz_delta.fetch_add(-1, Ordering::Relaxed);
        }
        Some(record)
    }

    /// Unconfined move (no-op if already there); returns the previous
    /// home, or `None` if the node is unknown.
    ///
    /// # Panics
    /// Panics if `to` is not a live cluster.
    pub fn move_any(&self, node: NodeId, to: ClusterId) -> Option<ClusterId> {
        let mut node_shard = self.nodes[Registry::node_shard_of(node)]
            .lock()
            .expect("node shard poisoned");
        let record = *node_shard.get(&node)?;
        if record.cluster == to {
            return Some(record.cluster);
        }
        // Cluster shard locks in ascending index order (one lock when
        // both clusters share a shard) — the node-shard-then-cluster
        // category order plus this makes the facade deadlock-free.
        let from_idx = Registry::cluster_shard_of(record.cluster);
        let to_idx = Registry::cluster_shard_of(to);
        let (mut first, mut second) = if from_idx == to_idx {
            (
                self.clusters[from_idx]
                    .lock()
                    .expect("cluster shard poisoned"),
                None,
            )
        } else {
            let (lo, hi) = (from_idx.min(to_idx), from_idx.max(to_idx));
            (
                self.clusters[lo].lock().expect("cluster shard poisoned"),
                Some(self.clusters[hi].lock().expect("cluster shard poisoned")),
            )
        };
        {
            let from_map: &mut BTreeMap<ClusterId, Cluster> = if from_idx <= to_idx {
                &mut first
            } else {
                second.as_mut().expect("distinct shards")
            };
            let from = from_map
                .get_mut(&record.cluster)
                .expect("record points at a live cluster");
            assert!(from.remove(node, record.honest), "member set drifted");
        }
        {
            let to_map: &mut BTreeMap<ClusterId, Cluster> =
                if from_idx == to_idx || to_idx < from_idx {
                    &mut first
                } else {
                    second.as_mut().expect("distinct shards")
                };
            let dest = to_map
                .get_mut(&to)
                .unwrap_or_else(|| panic!("move into dead cluster {to}"));
            assert!(dest.insert(node, record.honest), "{node} already in {to}");
        }
        node_shard.get_mut(&node).expect("checked above").cluster = to;
        Some(record.cluster)
    }

    /// Net `(population, byzantine)` deltas accumulated so far; fold
    /// them back with [`Registry::apply_wave_deltas`] after dropping the
    /// facade.
    pub fn deltas(&self) -> (i64, i64) {
        (
            self.pop_delta.load(Ordering::Relaxed),
            self.byz_delta.load(Ordering::Relaxed),
        )
    }
}

/// A [`WaveShards`] mutator confined to one operation's cluster
/// footprint.
///
/// Every access `debug_assert`s that the touched cluster lies inside
/// the footprint the handle was created with — the executable form of
/// the wave contract ("a handle never escapes its footprint"). Release
/// builds keep only the per-shard locking.
pub struct FootprintHandle<'w, 'a> {
    shards: &'w WaveShards<'a>,
    footprint: BTreeSet<ClusterId>,
}

impl FootprintHandle<'_, '_> {
    /// Whether `cluster` lies inside this handle's footprint.
    pub fn covers(&self, cluster: ClusterId) -> bool {
        self.footprint.contains(&cluster)
    }

    /// Attach into a footprint cluster.
    pub fn attach(&mut self, node: NodeId, honest: bool, cluster: ClusterId) {
        debug_assert!(
            self.covers(cluster),
            "handle escaped its footprint: attach into {cluster}"
        );
        self.shards.attach_any(node, honest, cluster);
    }

    /// Detach a node whose home lies inside the footprint.
    pub fn detach(&mut self, node: NodeId) -> Option<NodeRecord> {
        debug_assert!(
            self.shards
                .node_record(node)
                .map_or(true, |r| self.covers(r.cluster)),
            "handle escaped its footprint: detach of {node}"
        );
        self.shards.detach_any(node)
    }

    /// Move a node between two footprint clusters.
    pub fn move_within(&mut self, node: NodeId, to: ClusterId) -> Option<ClusterId> {
        debug_assert!(
            self.covers(to),
            "handle escaped its footprint: move into {to}"
        );
        debug_assert!(
            self.shards
                .node_record(node)
                .map_or(true, |r| self.covers(r.cluster)),
            "handle escaped its footprint: move of {node}"
        );
        self.shards.move_any(node, to)
    }

    /// Footprint-confined aggregate read.
    pub fn cluster_stats(&self, cluster: ClusterId) -> Option<ClusterStats> {
        debug_assert!(
            self.covers(cluster),
            "handle escaped its footprint: stats of {cluster}"
        );
        self.shards.cluster_stats(cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(raw: u64) -> NodeId {
        NodeId::from_raw(raw)
    }

    fn cid(raw: u64) -> ClusterId {
        ClusterId::from_raw(raw)
    }

    fn registry_with(clusters: u64, nodes_per: u64) -> Registry {
        let mut reg = Registry::new();
        for c in 0..clusters {
            reg.create_cluster(cid(c));
        }
        let mut n = 0u64;
        for c in 0..clusters {
            for i in 0..nodes_per {
                reg.attach(nid(n), i % 3 != 0, cid(c));
                n += 1;
            }
        }
        reg
    }

    #[test]
    fn counters_are_exact() {
        let reg = registry_with(5, 9);
        assert_eq!(reg.population(), 45);
        assert_eq!(reg.byz_population(), 15); // every third arrival
        assert_eq!(reg.cluster_count(), 5);
        reg.check_invariants().unwrap();
    }

    #[test]
    fn node_ids_are_sorted_across_shards() {
        let reg = registry_with(3, 50);
        let ids = reg.node_ids();
        assert_eq!(ids.len(), 150);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let byz = reg.byz_node_ids();
        assert!(byz.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(byz.len(), 51);
    }

    #[test]
    fn attach_detach_roundtrip() {
        let mut reg = registry_with(2, 4);
        let rec = reg.detach(nid(0)).unwrap();
        assert_eq!(rec.cluster, cid(0));
        assert!(!rec.honest);
        assert_eq!(reg.population(), 7);
        assert_eq!(reg.byz_population(), 3); // two per cluster, one detached
        assert!(reg.detach(nid(0)).is_none(), "double detach is None");
        reg.attach(nid(0), rec.honest, cid(1));
        assert_eq!(reg.get(nid(0)).unwrap().cluster, cid(1));
        reg.check_invariants().unwrap();
    }

    #[test]
    fn move_updates_both_sides() {
        let mut reg = registry_with(3, 5);
        assert_eq!(reg.move_to(nid(1), cid(2)), Some(cid(0)));
        assert_eq!(reg.get(nid(1)).unwrap().cluster, cid(2));
        assert!(reg.cluster(cid(2)).unwrap().contains(nid(1)));
        assert!(!reg.cluster(cid(0)).unwrap().contains(nid(1)));
        // Self-move is a no-op.
        assert_eq!(reg.move_to(nid(1), cid(2)), Some(cid(2)));
        // Unknown node.
        assert_eq!(reg.move_to(nid(999), cid(0)), None);
        reg.check_invariants().unwrap();
    }

    #[test]
    fn cluster_stats_track_mutations() {
        let mut reg = registry_with(2, 6);
        let s0 = reg.cluster_stats(cid(0)).unwrap();
        assert_eq!(s0.size, 6);
        assert_eq!(s0.byz(), 2);
        reg.move_to(nid(0), cid(1)).unwrap();
        assert_eq!(reg.cluster_stats(cid(0)).unwrap().size, 5);
        assert_eq!(reg.cluster_stats(cid(1)).unwrap().size, 7);
        assert!(reg.cluster_stats(cid(42)).is_none());
    }

    #[test]
    fn sorted_cluster_cache_is_maintained() {
        let mut reg = Registry::new();
        for raw in [5u64, 1, 9, 3] {
            reg.create_cluster(cid(raw));
        }
        assert_eq!(reg.cluster_ids(), &[cid(1), cid(3), cid(5), cid(9)]);
        assert_eq!(reg.cluster_id_at(2), cid(5));
        reg.remove_cluster(cid(5)).unwrap();
        assert_eq!(reg.cluster_ids(), &[cid(1), cid(3), cid(9)]);
        assert!(reg.remove_cluster(cid(5)).is_none());
        let order: Vec<ClusterId> = reg.clusters().map(|c| c.id()).collect();
        assert_eq!(order, vec![cid(1), cid(3), cid(9)]);
        reg.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "created twice")]
    fn duplicate_cluster_rejected() {
        let mut reg = Registry::new();
        reg.create_cluster(cid(1));
        reg.create_cluster(cid(1));
    }

    #[test]
    #[should_panic(expected = "holding")]
    fn removing_populated_cluster_panics() {
        let mut reg = registry_with(1, 3);
        reg.remove_cluster(cid(0));
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn duplicate_attach_rejected() {
        let mut reg = registry_with(2, 1);
        reg.attach(nid(0), true, cid(1));
    }

    #[test]
    fn shards_spread_load() {
        let reg = registry_with(32, 40); // 1280 nodes
        assert_eq!(reg.node_shard_count(), 64);
        assert_eq!(reg.cluster_shard_count(), 16);
        // Sequential ids must not pile onto one shard.
        let counts: Vec<usize> = (0..reg.node_shard_count())
            .map(|i| {
                reg.node_ids()
                    .iter()
                    .filter(|n| (n.raw() % 64) as usize == i)
                    .count()
            })
            .collect();
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn invariant_check_is_exhaustive_on_empty() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        reg.check_invariants().unwrap();
    }

    #[test]
    fn wave_shards_mutations_match_direct_registry_calls() {
        let mut direct = registry_with(4, 6);
        let mut sharded = registry_with(4, 6);

        direct.detach(nid(0)).unwrap();
        direct.attach(nid(100), false, cid(2));
        direct.move_to(nid(5), cid(3)).unwrap();

        {
            let shards = sharded.wave_shards();
            let mut h = shards.handle(&[cid(0), cid(2), cid(3)]);
            assert!(h.covers(cid(0)) && !h.covers(cid(1)));
            let rec = h.detach(nid(0)).unwrap();
            assert_eq!(rec.cluster, cid(0));
            h.attach(nid(100), false, cid(2));
            // nid(5) lives in cluster 0 (6 nodes per cluster).
            assert_eq!(h.move_within(nid(5), cid(3)), Some(cid(0)));
            assert_eq!(
                h.cluster_stats(cid(3)).unwrap().size,
                direct.cluster_stats(cid(3)).unwrap().size
            );
            let (dp, db) = shards.deltas();
            assert_eq!((dp, db), (0, 0), "one detach + one attach net out");
            drop(shards);
            sharded.apply_wave_deltas(dp, db);
        }

        assert_eq!(direct.population(), sharded.population());
        assert_eq!(direct.byz_population(), sharded.byz_population());
        assert_eq!(direct.node_ids(), sharded.node_ids());
        for c in 0..4 {
            assert_eq!(
                direct.cluster(cid(c)).unwrap().member_vec(),
                sharded.cluster(cid(c)).unwrap().member_vec()
            );
        }
        sharded.check_invariants().unwrap();
    }

    /// The facade's whole point: handles over disjoint footprints may
    /// run on different threads, and the final registry state is
    /// independent of their interleaving.
    #[test]
    fn disjoint_handles_mutate_concurrently() {
        let mut reg = registry_with(8, 8); // 64 nodes, ids 0..64
        {
            let shards = reg.wave_shards();
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let shards = &shards;
                    s.spawn(move || {
                        // Thread t owns clusters 2t and 2t+1.
                        let fp = [cid(2 * t), cid(2 * t + 1)];
                        let mut h = shards.handle(&fp);
                        // Detach one member, move another across the
                        // footprint, attach a fresh node.
                        h.detach(nid(2 * t * 8)).unwrap();
                        h.move_within(nid(2 * t * 8 + 1), cid(2 * t + 1)).unwrap();
                        h.attach(nid(1000 + t), t % 2 == 0, cid(2 * t + 1));
                    });
                }
            });
            let (dp, db) = shards.deltas();
            assert_eq!(dp, 0, "4 detaches + 4 attaches net out");
            drop(shards);
            reg.apply_wave_deltas(dp, db);
        }
        reg.check_invariants().unwrap();
        assert_eq!(reg.population(), 64);
        for t in 0..4u64 {
            assert!(!reg.contains(nid(2 * t * 8)));
            assert!(reg.contains(nid(1000 + t)));
            assert_eq!(reg.get(nid(2 * t * 8 + 1)).unwrap().cluster, cid(2 * t + 1));
        }
    }

    #[test]
    #[should_panic(expected = "escaped its footprint")]
    #[cfg(debug_assertions)]
    fn handle_escape_is_caught() {
        let mut reg = registry_with(3, 4);
        let shards = reg.wave_shards();
        let mut h = shards.handle(&[cid(0)]);
        // nid(4) lives in cluster 1 — outside the footprint.
        let _ = h.detach(nid(4));
    }

    #[test]
    fn move_any_across_and_within_shards() {
        let mut reg = registry_with(CLUSTER_SHARDS as u64 + 1, 2);
        {
            let shards = reg.wave_shards();
            // cid(0) and cid(CLUSTER_SHARDS) share a shard; cid(1) does
            // not. Exercise both lock paths plus the unknown-node case.
            assert_eq!(
                shards.move_any(nid(0), cid(CLUSTER_SHARDS as u64)),
                Some(cid(0))
            );
            assert_eq!(shards.move_any(nid(1), cid(1)), Some(cid(0)));
            assert_eq!(shards.move_any(nid(1), cid(1)), Some(cid(1)), "no-op");
            assert_eq!(shards.move_any(nid(9999), cid(1)), None);
            assert!(shards.contains_cluster(cid(1)));
            assert!(!shards.contains_cluster(cid(999)));
            assert_eq!(shards.node_record(nid(1)).unwrap().cluster, cid(1));
            assert_eq!(shards.deltas(), (0, 0));
        }
        reg.check_invariants().unwrap();
    }
}
