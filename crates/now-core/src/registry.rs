//! Slab-backed membership registry with generational indices.
//!
//! The membership state of a NOW deployment used to live in sharded
//! `BTreeMap`s — one node → record map and one cluster map, split over
//! fixed shard arrays. Wave planning walks this state on every
//! operation (~85 % of a batch step's wall clock), and pointer-chasing
//! tree layouts dominate that walk, so this module stores the hot state
//! in contiguous slabs instead:
//!
//! * **cluster slab** — [`Cluster`] objects (sorted member vecs plus
//!   cached Byzantine counts) live in one `Vec` of generation-tagged
//!   slots, recycled through a freelist on merge. Lookup by
//!   [`ClusterId`] is a binary search over the parallel sorted id/slot
//!   arrays; [`Registry::cluster_ids`] is a borrow of the sorted cache.
//! * **node slab + direct index** — node records live in a second slab,
//!   and `node → slot` resolution is a direct array index
//!   (`node_index[raw id]`): ids are allocated sequentially by
//!   [`now_net::IdGen`], so the index stays dense and
//!   [`Registry::node_ids`] is an ascending scan, already sorted.
//! * **exact aggregates** — a global population counter, a global
//!   Byzantine counter, and the sorted cluster-id cache, all maintained
//!   incrementally, so `population()` / `byz_population()` /
//!   `cluster_ids()` are O(1).
//!
//! **Generational indices.** A [`ClusterIdx`] / [`NodeIdx`] names a
//! slab slot *and* the generation the slot had when the index was
//! issued. Freeing a slot bumps its generation, so an index held across
//! a merge (or a departure) can never silently alias the slot's next
//! tenant: [`Registry::cluster_by_idx`] / [`Registry::node_by_idx`]
//! assert the generation still matches and panic on staleness.
//!
//! **Determinism.** Slot numbers and generations are *internal* names:
//! nothing observable (ids, member vecs, counters, reports) depends on
//! them, and every public iteration order is canonical id order
//! ([`Registry::cluster_ids`], [`Registry::node_ids`],
//! [`Registry::clusters`]). That is what keeps slab recycling — whose
//! freelist order can vary across thread interleavings inside a wave —
//! invisible to the bit-determinism gates.
//!
//! Every mutation goes through the registry ([`Registry::attach`],
//! [`Registry::detach`], [`Registry::move_to`]), which keeps the node
//! index, the member vecs, and the aggregate counters in lockstep;
//! [`Registry::check_invariants`] re-derives all of them from scratch
//! and is run by `NowSystem::check_consistency` after every operation in
//! the test suites, so the slab layout is *exact*, not approximate.

use crate::cluster::Cluster;
use crate::error::NowError;
use now_net::{ClusterId, NodeId};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

/// Sentinel in the direct node index: "no slot".
const NO_SLOT: u32 = u32::MAX;

/// One node's registry entry: the simulator's ground-truth honesty flag
/// and the cluster the node currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRecord {
    /// Ground-truth honesty (the protocol itself never reads this except
    /// through the ideal-functionality thresholds of [`crate::Malice`]).
    pub honest: bool,
    /// Home cluster.
    pub cluster: ClusterId,
}

/// O(1) per-cluster aggregate: member count and honest-member count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Total members.
    pub size: usize,
    /// Honest members.
    pub honest: usize,
}

impl ClusterStats {
    /// Byzantine members.
    pub fn byz(&self) -> usize {
        self.size - self.honest
    }
}

/// A generation-checked reference to a cluster slab slot.
///
/// Issued by [`Registry::cluster_idx`]; resolved by
/// [`Registry::cluster_by_idx`], which panics if the slot has been
/// recycled since (its generation moved on). The planner never holds
/// one across a maintenance phase — indices are resolved fresh from
/// live [`ClusterId`]s each wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterIdx {
    slot: u32,
    gen: u32,
}

/// A generation-checked reference to a node slab slot (see
/// [`ClusterIdx`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeIdx {
    slot: u32,
    gen: u32,
}

/// One slot of the cluster slab.
#[derive(Debug, Clone)]
struct ClusterSlot {
    cluster: Cluster,
    /// Bumped when the slot is freed; stale [`ClusterIdx`] detector.
    gen: u32,
    live: bool,
}

/// One slot of the node slab.
#[derive(Debug, Clone, Copy)]
struct NodeSlot {
    node: NodeId,
    honest: bool,
    /// Slot of the home cluster in the cluster slab.
    cluster_slot: u32,
    /// Bumped when the slot is freed; stale [`NodeIdx`] detector.
    gen: u32,
    live: bool,
}

/// The slab-backed membership store (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// The cluster slab; freed slots are recycled via `cluster_free`.
    cluster_slots: Vec<ClusterSlot>,
    cluster_free: Vec<u32>,
    /// All live cluster ids, sorted ascending (kept exact on
    /// insert/remove; O(#C) memmove there buys O(1) random access and
    /// allocation-free iteration everywhere else).
    sorted_clusters: Vec<ClusterId>,
    /// Slab slot of `sorted_clusters[i]` (parallel array).
    sorted_slots: Vec<u32>,
    /// The node slab; freed slots are recycled via `node_free`.
    node_slots: Vec<NodeSlot>,
    node_free: Vec<u32>,
    /// Direct map `raw NodeId → node slab slot` (`NO_SLOT` = absent).
    /// Ids are sequential, so this stays dense.
    node_index: Vec<u32>,
    population: u64,
    byz_population: u64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Slab slot of a live cluster, by id (binary search over the
    /// sorted cache).
    #[inline]
    fn cluster_slot_of(&self, id: ClusterId) -> Option<u32> {
        self.sorted_clusters
            .binary_search(&id)
            .ok()
            .map(|pos| self.sorted_slots[pos])
    }

    /// Slab slot of a live node, by id (direct index).
    #[inline]
    fn node_slot_of(&self, node: NodeId) -> Option<u32> {
        match self.node_index.get(node.raw() as usize) {
            Some(&slot) if slot != NO_SLOT => Some(slot),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Aggregates.
    // ------------------------------------------------------------------

    /// Current population (exact counter, O(1)).
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Current Byzantine population (exact counter, O(1)).
    pub fn byz_population(&self) -> u64 {
        self.byz_population
    }

    /// Whether no node is registered.
    pub fn is_empty(&self) -> bool {
        self.population == 0
    }

    // ------------------------------------------------------------------
    // Node index.
    // ------------------------------------------------------------------

    /// The record of a live node (direct slab index, O(1)).
    pub fn get(&self, node: NodeId) -> Option<NodeRecord> {
        let slot = &self.node_slots[self.node_slot_of(node)? as usize];
        debug_assert!(slot.live && slot.node == node);
        Some(NodeRecord {
            honest: slot.honest,
            cluster: self.cluster_slots[slot.cluster_slot as usize].cluster.id(),
        })
    }

    /// Whether the node is registered.
    pub fn contains(&self, node: NodeId) -> bool {
        self.node_slot_of(node).is_some()
    }

    /// All node ids, ascending: one scan of the direct index, which is
    /// keyed by raw id and therefore already sorted.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.population as usize);
        for (raw, &slot) in self.node_index.iter().enumerate() {
            if slot != NO_SLOT {
                out.push(NodeId::from_raw(raw as u64));
            }
        }
        out
    }

    /// Ids of the Byzantine nodes, ascending (same scan, filtered).
    pub fn byz_node_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.byz_population as usize);
        for (raw, &slot) in self.node_index.iter().enumerate() {
            if slot != NO_SLOT && !self.node_slots[slot as usize].honest {
                out.push(NodeId::from_raw(raw as u64));
            }
        }
        out
    }

    /// A generation-checked index for a live node.
    pub fn node_idx(&self, node: NodeId) -> Option<NodeIdx> {
        let slot = self.node_slot_of(node)?;
        Some(NodeIdx {
            slot,
            gen: self.node_slots[slot as usize].gen,
        })
    }

    /// Resolves a [`NodeIdx`] to the node's current record.
    ///
    /// # Panics
    /// Panics if the index is stale: the slot was freed (and possibly
    /// recycled) after the index was issued.
    pub fn node_by_idx(&self, idx: NodeIdx) -> NodeRecord {
        let slot = &self.node_slots[idx.slot as usize];
        assert!(
            slot.live && slot.gen == idx.gen,
            "stale node index: slot {} gen {} (slot is at gen {}, live {})",
            idx.slot,
            idx.gen,
            slot.gen,
            slot.live
        );
        NodeRecord {
            honest: slot.honest,
            cluster: self.cluster_slots[slot.cluster_slot as usize].cluster.id(),
        }
    }

    // ------------------------------------------------------------------
    // Cluster store.
    // ------------------------------------------------------------------

    /// Creates an empty cluster.
    ///
    /// # Panics
    /// Panics if the id is already live.
    pub fn create_cluster(&mut self, id: ClusterId) {
        let pos = match self.sorted_clusters.binary_search(&id) {
            // INVARIANT: documented `# Panics` contract — cluster ids
            // come from a monotone IdGen, so a duplicate is a caller
            // bug, not a runtime condition.
            Ok(_) => panic!("cluster {id} created twice"),
            Err(pos) => pos,
        };
        let slot = match self.cluster_free.pop() {
            Some(slot) => {
                let s = &mut self.cluster_slots[slot as usize];
                debug_assert!(!s.live);
                s.cluster = Cluster::new(id);
                s.live = true;
                slot
            }
            None => {
                self.cluster_slots.push(ClusterSlot {
                    cluster: Cluster::new(id),
                    gen: 0,
                    live: true,
                });
                (self.cluster_slots.len() - 1) as u32
            }
        };
        self.sorted_clusters.insert(pos, id);
        self.sorted_slots.insert(pos, slot);
    }

    /// Removes a cluster from the store, freeing (and
    /// generation-bumping) its slab slot.
    ///
    /// # Panics
    /// Panics if the cluster still has members (detach or move them
    /// first) — removing a populated cluster would corrupt the counters.
    pub fn remove_cluster(&mut self, id: ClusterId) -> Option<Cluster> {
        let pos = self.sorted_clusters.binary_search(&id).ok()?;
        let slot = self.sorted_slots[pos];
        let s = &mut self.cluster_slots[slot as usize];
        assert!(
            s.cluster.is_empty(),
            "cluster {id} removed while holding {} members",
            s.cluster.size()
        );
        let removed = std::mem::replace(&mut s.cluster, Cluster::new(id));
        s.live = false;
        s.gen = s.gen.wrapping_add(1);
        self.cluster_free.push(slot);
        self.sorted_clusters.remove(pos);
        self.sorted_slots.remove(pos);
        Some(removed)
    }

    /// A cluster by id.
    pub fn cluster(&self, id: ClusterId) -> Option<&Cluster> {
        self.cluster_slot_of(id)
            .map(|slot| &self.cluster_slots[slot as usize].cluster)
    }

    /// Whether the cluster is live.
    pub fn contains_cluster(&self, id: ClusterId) -> bool {
        self.cluster_slot_of(id).is_some()
    }

    /// Number of live clusters.
    pub fn cluster_count(&self) -> usize {
        self.sorted_clusters.len()
    }

    /// Live cluster ids, ascending (cached; no allocation on the
    /// registry's side beyond the slice view).
    pub fn cluster_ids(&self) -> &[ClusterId] {
        &self.sorted_clusters
    }

    /// The `idx`-th live cluster id in ascending order (O(1); used by
    /// uniform contact-cluster draws).
    ///
    /// # Panics
    /// Panics if `idx ≥ cluster_count()`.
    pub fn cluster_id_at(&self, idx: usize) -> ClusterId {
        self.sorted_clusters[idx]
    }

    /// Iterates clusters in ascending id order.
    pub fn clusters(&self) -> impl Iterator<Item = &Cluster> {
        self.sorted_slots
            .iter()
            .map(move |&slot| &self.cluster_slots[slot as usize].cluster)
    }

    /// A generation-checked index for a live cluster.
    pub fn cluster_idx(&self, id: ClusterId) -> Option<ClusterIdx> {
        let slot = self.cluster_slot_of(id)?;
        Some(ClusterIdx {
            slot,
            gen: self.cluster_slots[slot as usize].gen,
        })
    }

    /// Resolves a [`ClusterIdx`] to the cluster it was issued for.
    ///
    /// # Panics
    /// Panics if the index is stale: the slot was freed by a merge (and
    /// possibly recycled by a later split) after the index was issued.
    pub fn cluster_by_idx(&self, idx: ClusterIdx) -> &Cluster {
        let slot = &self.cluster_slots[idx.slot as usize];
        assert!(
            slot.live && slot.gen == idx.gen,
            "stale cluster index: slot {} gen {} (slot is at gen {}, live {})",
            idx.slot,
            idx.gen,
            slot.gen,
            slot.live
        );
        &slot.cluster
    }

    /// Per-cluster size / honest-count aggregate, O(1) after the slot
    /// lookup ([`Cluster`] caches its Byzantine count).
    pub fn cluster_stats(&self, id: ClusterId) -> Option<ClusterStats> {
        self.cluster(id).map(|c| ClusterStats {
            size: c.size(),
            honest: c.honest_count(),
        })
    }

    // ------------------------------------------------------------------
    // Membership mutations (the only writers of the aggregates).
    // ------------------------------------------------------------------

    /// Registers `node` as a member of `cluster`.
    ///
    /// # Panics
    /// Panics if the node is already registered or the cluster is not
    /// live.
    pub fn attach(&mut self, node: NodeId, honest: bool, cluster: ClusterId) {
        self.attach_uncounted(node, honest, cluster);
        self.population += 1;
        if !honest {
            self.byz_population += 1;
        }
    }

    /// Unregisters `node`; returns its final record.
    pub fn detach(&mut self, node: NodeId) -> Option<NodeRecord> {
        let record = self.detach_uncounted(node)?;
        self.population -= 1;
        if !record.honest {
            self.byz_population -= 1;
        }
        Some(record)
    }

    /// Moves `node` to cluster `to` (no-op if already there); returns
    /// the previous home, or `None` if the node is unknown.
    ///
    /// # Panics
    /// Panics if `to` is not a live cluster.
    pub fn move_to(&mut self, node: NodeId, to: ClusterId) -> Option<ClusterId> {
        let slot = self.node_slot_of(node)?;
        let (honest, from_slot) = {
            let s = &self.node_slots[slot as usize];
            (s.honest, s.cluster_slot)
        };
        let from_id = self.cluster_slots[from_slot as usize].cluster.id();
        if from_id == to {
            return Some(from_id);
        }
        // INVARIANT: documented `# Panics` contract — move targets are
        // resolved from live footprints by the planner; a dead target
        // means the serial maintenance phase was bypassed.
        let to_slot = self
            .cluster_slot_of(to)
            .unwrap_or_else(|| panic!("move into dead cluster {to}"));
        assert!(
            self.cluster_slots[from_slot as usize]
                .cluster
                .remove(node, honest),
            "member set drifted"
        );
        assert!(
            self.cluster_slots[to_slot as usize]
                .cluster
                .insert(node, honest),
            "{node} already in {to}"
        );
        self.node_slots[slot as usize].cluster_slot = to_slot;
        Some(from_id)
    }

    /// [`Registry::attach`] without the aggregate-counter update: the
    /// shared body for direct attaches and wave-facade attaches (which
    /// accumulate counter *deltas* instead; see [`WaveShards`]).
    fn attach_uncounted(&mut self, node: NodeId, honest: bool, cluster: ClusterId) {
        // INVARIANT: documented `# Panics` contract — attach targets
        // come from the caller's live cluster choice; a dead id here is
        // an ordering bug upstream, not recoverable state.
        let cslot = self
            .cluster_slot_of(cluster)
            .unwrap_or_else(|| panic!("attach into dead cluster {cluster}"));
        assert!(
            self.cluster_slots[cslot as usize]
                .cluster
                .insert(node, honest),
            "{node} already in {cluster}"
        );
        let raw = node.raw() as usize;
        if self.node_index.len() <= raw {
            self.node_index.resize(raw + 1, NO_SLOT);
        }
        assert!(self.node_index[raw] == NO_SLOT, "{node} attached twice");
        let slot = match self.node_free.pop() {
            Some(slot) => {
                let s = &mut self.node_slots[slot as usize];
                debug_assert!(!s.live);
                s.node = node;
                s.honest = honest;
                s.cluster_slot = cslot;
                s.live = true;
                slot
            }
            None => {
                self.node_slots.push(NodeSlot {
                    node,
                    honest,
                    cluster_slot: cslot,
                    gen: 0,
                    live: true,
                });
                (self.node_slots.len() - 1) as u32
            }
        };
        self.node_index[raw] = slot;
    }

    /// [`Registry::detach`] without the aggregate-counter update (see
    /// [`Registry::attach_uncounted`]).
    fn detach_uncounted(&mut self, node: NodeId) -> Option<NodeRecord> {
        let slot = self.node_slot_of(node)?;
        self.node_index[node.raw() as usize] = NO_SLOT;
        let (honest, cslot) = {
            let s = &mut self.node_slots[slot as usize];
            s.live = false;
            s.gen = s.gen.wrapping_add(1);
            (s.honest, s.cluster_slot)
        };
        self.node_free.push(slot);
        let c = &mut self.cluster_slots[cslot as usize];
        assert!(c.cluster.remove(node, honest), "member set drifted");
        Some(NodeRecord {
            honest,
            cluster: c.cluster.id(),
        })
    }

    // ------------------------------------------------------------------
    // Exactness.
    // ------------------------------------------------------------------

    /// Re-derives every aggregate and cross-checks the direct node
    /// index, the slab freelists, the member vecs, the cached Byzantine
    /// counts, the sorted cluster cache, and the global counters.
    /// O(n + #C + slab capacity).
    ///
    /// # Errors
    /// A human-readable description of the first inconsistency found.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Node index: every entry points at a live slot that agrees on
        // the id and at a live home cluster holding the node.
        let mut seen_nodes = 0u64;
        let mut seen_byz = 0u64;
        for (raw, &slot) in self.node_index.iter().enumerate() {
            if slot == NO_SLOT {
                continue;
            }
            let node = NodeId::from_raw(raw as u64);
            let Some(s) = self.node_slots.get(slot as usize) else {
                return Err(format!("{node} points at out-of-range slot {slot}"));
            };
            if !s.live {
                return Err(format!("{node} points at dead slot {slot}"));
            }
            if s.node != node {
                return Err(format!(
                    "slot {slot} id drift: holds {}, indexed by {node}",
                    s.node
                ));
            }
            let Some(cs) = self.cluster_slots.get(s.cluster_slot as usize) else {
                return Err(format!("{node} home slot {} out of range", s.cluster_slot));
            };
            if !cs.live {
                return Err(format!(
                    "{node} points at dead cluster slot {}",
                    s.cluster_slot
                ));
            }
            if !cs.cluster.contains(node) {
                return Err(format!(
                    "{node} missing from its cluster {}",
                    cs.cluster.id()
                ));
            }
            seen_nodes += 1;
            if !s.honest {
                seen_byz += 1;
            }
        }
        if seen_nodes != self.population {
            return Err(format!(
                "population counter drift: counted {seen_nodes}, cached {}",
                self.population
            ));
        }
        if seen_byz != self.byz_population {
            return Err(format!(
                "byz counter drift: counted {seen_byz}, cached {}",
                self.byz_population
            ));
        }

        // Node slab: live slots and freelist partition the slab.
        let live_nodes = self.node_slots.iter().filter(|s| s.live).count() as u64;
        if live_nodes != self.population {
            return Err(format!(
                "node slab drift: {live_nodes} live slots vs population {}",
                self.population
            ));
        }
        if self.node_free.len() + live_nodes as usize != self.node_slots.len() {
            return Err(format!(
                "node freelist drift: {} free + {live_nodes} live != {} slots",
                self.node_free.len(),
                self.node_slots.len()
            ));
        }
        for &slot in &self.node_free {
            match self.node_slots.get(slot as usize) {
                Some(s) if !s.live => {}
                _ => return Err(format!("node freelist holds live/bogus slot {slot}")),
            }
        }

        // Cluster store: sorted cache + slab + member vecs + byz caches.
        if self.sorted_clusters.len() != self.sorted_slots.len() {
            return Err("sorted cluster cache arrays disagree in length".to_string());
        }
        // INVARIANT: `windows(2)` only yields slices of length 2.
        if self.sorted_clusters.windows(2).any(|w| w[0] >= w[1]) {
            return Err("sorted cluster cache out of order".to_string());
        }
        let mut memberships = 0u64;
        for (pos, (&cid, &slot)) in self
            .sorted_clusters
            .iter()
            .zip(&self.sorted_slots)
            .enumerate()
        {
            let Some(cs) = self.cluster_slots.get(slot as usize) else {
                return Err(format!("sorted cache pos {pos} slot {slot} out of range"));
            };
            if !cs.live {
                return Err(format!("cluster {cid} cached at dead slot {slot}"));
            }
            if cs.cluster.id() != cid {
                return Err(format!("cluster id mismatch at {cid}"));
            }
            let mut byz = 0usize;
            let mut prev: Option<NodeId> = None;
            for m in cs.cluster.members() {
                if prev.is_some_and(|p| p >= m) {
                    return Err(format!("member vec of {cid} out of order"));
                }
                prev = Some(m);
                let Some(rec) = self.get(m) else {
                    return Err(format!("{m} in cluster {cid} but not in node index"));
                };
                if rec.cluster != cid {
                    return Err(format!("{m} node index points elsewhere than {cid}"));
                }
                if !rec.honest {
                    byz += 1;
                }
                memberships += 1;
            }
            if byz != cs.cluster.byz_count() {
                return Err(format!(
                    "byz cache drift in {cid}: cached {}, actual {byz}",
                    cs.cluster.byz_count()
                ));
            }
        }
        if memberships != self.population {
            return Err(format!(
                "membership drift: {memberships} memberships vs {} index entries",
                self.population
            ));
        }
        let live_clusters = self.cluster_slots.iter().filter(|s| s.live).count();
        if live_clusters != self.sorted_clusters.len() {
            return Err(format!(
                "sorted cache size drift: {} cached vs {live_clusters} live slots",
                self.sorted_clusters.len()
            ));
        }
        if self.cluster_free.len() + live_clusters != self.cluster_slots.len() {
            return Err(format!(
                "cluster freelist drift: {} free + {live_clusters} live != {} slots",
                self.cluster_free.len(),
                self.cluster_slots.len()
            ));
        }
        for &slot in &self.cluster_free {
            match self.cluster_slots.get(slot as usize) {
                Some(s) if !s.live => {}
                _ => return Err(format!("cluster freelist holds live/bogus slot {slot}")),
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Wave-scoped facade access.
    // ------------------------------------------------------------------

    /// Wraps the registry in a wave-scoped mutation facade for the
    /// duration of one conflict-free wave (see [`WaveShards`]).
    ///
    /// While the facade is alive the registry itself is mutably
    /// borrowed, so the aggregate counters and the sorted cluster cache
    /// are frozen; mutations made through the facade accumulate
    /// population/Byzantine *deltas* which the caller folds back with
    /// [`Registry::apply_wave_deltas`] once the facade is dropped.
    /// Cluster creation/removal is deliberately not offered — wave
    /// execution defers split/merge maintenance to its canonical serial
    /// phase.
    pub fn wave_shards(&mut self) -> WaveShards<'_> {
        WaveShards {
            store: Mutex::new(self),
            pop_delta: AtomicI64::new(0),
            byz_delta: AtomicI64::new(0),
        }
    }

    /// Folds the population/Byzantine deltas of a completed wave (from
    /// [`WaveShards::deltas`]) back into the exact aggregate counters.
    ///
    /// # Errors
    /// [`NowError::StateCorrupt`] if a delta would drive a counter
    /// negative — that would mean the wave detached nodes that never
    /// existed. The counters are left untouched on error (the first
    /// failing check returns before either field is written).
    pub fn apply_wave_deltas(&mut self, pop_delta: i64, byz_delta: i64) -> Result<(), NowError> {
        let population = self
            .population
            .checked_add_signed(pop_delta)
            .ok_or_else(|| NowError::StateCorrupt {
                reason: format!(
                    "wave population delta {pop_delta} underflows counter {}",
                    self.population
                ),
            })?;
        let byz_population = self
            .byz_population
            .checked_add_signed(byz_delta)
            .ok_or_else(|| NowError::StateCorrupt {
                reason: format!(
                    "wave byzantine delta {byz_delta} underflows counter {}",
                    self.byz_population
                ),
            })?;
        self.population = population;
        self.byz_population = byz_population;
        Ok(())
    }
}

/// Wave-scoped mutation facade over the registry for one conflict-free
/// wave.
///
/// Obtained from [`Registry::wave_shards`]. The slab store sits behind
/// one [`Mutex`], shared by every handle: wave effects are applied in
/// one canonical serial pass by the executor, so the lock is
/// uncontended there, and the handles stay `Sync` for callers that do
/// apply disjoint-footprint mutations from worker threads. Under
/// threads, correctness rests on the wave contract itself — every node
/// is touched by at most one handle and every cluster is mutated by at
/// most one handle, so the final membership state is a function of the
/// operation set, not of lock-acquisition order. (Slab slot numbers
/// *can* vary with interleaving; they are internal names and observable
/// state never depends on them — see the module docs.)
///
/// [`WaveShards::handle`] scopes a mutator to one operation's cluster
/// footprint and `debug_assert`s that it never escapes it; the
/// unconfined `*_any` methods exist for the executor's canonical serial
/// phase, where exchange relocations legitimately land outside every
/// footprint.
pub struct WaveShards<'a> {
    store: Mutex<&'a mut Registry>,
    pop_delta: AtomicI64,
    byz_delta: AtomicI64,
}

impl<'a> WaveShards<'a> {
    /// A mutator confined (by debug assertions) to `footprint`.
    pub fn handle(&self, footprint: &[ClusterId]) -> FootprintHandle<'_, 'a> {
        let mut sorted: Vec<ClusterId> = footprint.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        FootprintHandle {
            shards: self,
            footprint: sorted,
        }
    }

    /// The record of a live node (locks the store briefly).
    pub fn node_record(&self, node: NodeId) -> Option<NodeRecord> {
        // INVARIANT: the store mutex is poisoned only if a planner
        // worker panicked while holding it; the executor re-raises
        // that panic after quiescence, so this path never fires in
        // a run that is still healthy.
        self.store
            .lock()
            .expect("registry store poisoned")
            .get(node)
    }

    /// Whether the cluster is live.
    pub fn contains_cluster(&self, cluster: ClusterId) -> bool {
        // INVARIANT: the store mutex is poisoned only if a planner
        // worker panicked while holding it; the executor re-raises
        // that panic after quiescence, so this path never fires in
        // a run that is still healthy.
        self.store
            .lock()
            .expect("registry store poisoned")
            .contains_cluster(cluster)
    }

    /// Per-cluster aggregate, as [`Registry::cluster_stats`].
    pub fn cluster_stats(&self, cluster: ClusterId) -> Option<ClusterStats> {
        // INVARIANT: the store mutex is poisoned only if a planner
        // worker panicked while holding it; the executor re-raises
        // that panic after quiescence, so this path never fires in
        // a run that is still healthy.
        self.store
            .lock()
            .expect("registry store poisoned")
            .cluster_stats(cluster)
    }

    /// Unconfined attach (canonical serial phase only; see the type
    /// docs). Same invariant maintenance as [`Registry::attach`].
    ///
    /// # Panics
    /// Panics if the node is already registered or the cluster is dead.
    pub fn attach_any(&self, node: NodeId, honest: bool, cluster: ClusterId) {
        // INVARIANT: the store mutex is poisoned only if a planner
        // worker panicked while holding it; the executor re-raises
        // that panic after quiescence, so this path never fires in
        // a run that is still healthy.
        self.store
            .lock()
            .expect("registry store poisoned")
            .attach_uncounted(node, honest, cluster);
        self.pop_delta.fetch_add(1, Ordering::Relaxed);
        if !honest {
            self.byz_delta.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Unconfined detach; returns the node's final record, or `None` if
    /// it was not registered.
    pub fn detach_any(&self, node: NodeId) -> Option<NodeRecord> {
        // INVARIANT: the store mutex is poisoned only if a planner
        // worker panicked while holding it; the executor re-raises
        // that panic after quiescence, so this path never fires in
        // a run that is still healthy.
        let record = self
            .store
            .lock()
            .expect("registry store poisoned")
            .detach_uncounted(node)?;
        self.pop_delta.fetch_add(-1, Ordering::Relaxed);
        if !record.honest {
            self.byz_delta.fetch_add(-1, Ordering::Relaxed);
        }
        Some(record)
    }

    /// Unconfined move (no-op if already there); returns the previous
    /// home, or `None` if the node is unknown.
    ///
    /// # Panics
    /// Panics if `to` is not a live cluster.
    pub fn move_any(&self, node: NodeId, to: ClusterId) -> Option<ClusterId> {
        // INVARIANT: the store mutex is poisoned only if a planner
        // worker panicked while holding it; the executor re-raises
        // that panic after quiescence, so this path never fires in
        // a run that is still healthy.
        self.store
            .lock()
            .expect("registry store poisoned")
            .move_to(node, to)
    }

    /// Net `(population, byzantine)` deltas accumulated so far; fold
    /// them back with [`Registry::apply_wave_deltas`] after dropping the
    /// facade.
    pub fn deltas(&self) -> (i64, i64) {
        (
            self.pop_delta.load(Ordering::Relaxed),
            self.byz_delta.load(Ordering::Relaxed),
        )
    }
}

/// A [`WaveShards`] mutator confined to one operation's cluster
/// footprint.
///
/// Every access `debug_assert`s that the touched cluster lies inside
/// the footprint the handle was created with — the executable form of
/// the wave contract ("a handle never escapes its footprint"). Release
/// builds keep only the store locking.
pub struct FootprintHandle<'w, 'a> {
    shards: &'w WaveShards<'a>,
    /// Sorted, deduplicated; membership is a binary search.
    footprint: Vec<ClusterId>,
}

impl FootprintHandle<'_, '_> {
    /// Whether `cluster` lies inside this handle's footprint.
    pub fn covers(&self, cluster: ClusterId) -> bool {
        self.footprint.binary_search(&cluster).is_ok()
    }

    /// Attach into a footprint cluster.
    pub fn attach(&mut self, node: NodeId, honest: bool, cluster: ClusterId) {
        debug_assert!(
            self.covers(cluster),
            "handle escaped its footprint: attach into {cluster}"
        );
        self.shards.attach_any(node, honest, cluster);
    }

    /// Detach a node whose home lies inside the footprint.
    pub fn detach(&mut self, node: NodeId) -> Option<NodeRecord> {
        debug_assert!(
            self.shards
                .node_record(node)
                .map_or(true, |r| self.covers(r.cluster)),
            "handle escaped its footprint: detach of {node}"
        );
        self.shards.detach_any(node)
    }

    /// Move a node between two footprint clusters.
    pub fn move_within(&mut self, node: NodeId, to: ClusterId) -> Option<ClusterId> {
        debug_assert!(
            self.covers(to),
            "handle escaped its footprint: move into {to}"
        );
        debug_assert!(
            self.shards
                .node_record(node)
                .map_or(true, |r| self.covers(r.cluster)),
            "handle escaped its footprint: move of {node}"
        );
        self.shards.move_any(node, to)
    }

    /// Footprint-confined aggregate read.
    pub fn cluster_stats(&self, cluster: ClusterId) -> Option<ClusterStats> {
        debug_assert!(
            self.covers(cluster),
            "handle escaped its footprint: stats of {cluster}"
        );
        self.shards.cluster_stats(cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(raw: u64) -> NodeId {
        NodeId::from_raw(raw)
    }

    fn cid(raw: u64) -> ClusterId {
        ClusterId::from_raw(raw)
    }

    fn registry_with(clusters: u64, nodes_per: u64) -> Registry {
        let mut reg = Registry::new();
        for c in 0..clusters {
            reg.create_cluster(cid(c));
        }
        let mut n = 0u64;
        for c in 0..clusters {
            for i in 0..nodes_per {
                reg.attach(nid(n), i % 3 != 0, cid(c));
                n += 1;
            }
        }
        reg
    }

    #[test]
    fn counters_are_exact() {
        let reg = registry_with(5, 9);
        assert_eq!(reg.population(), 45);
        assert_eq!(reg.byz_population(), 15); // every third arrival
        assert_eq!(reg.cluster_count(), 5);
        reg.check_invariants().unwrap();
    }

    #[test]
    fn node_ids_are_sorted_across_shards() {
        let reg = registry_with(3, 50);
        let ids = reg.node_ids();
        assert_eq!(ids.len(), 150);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let byz = reg.byz_node_ids();
        assert!(byz.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(byz.len(), 51);
    }

    #[test]
    fn attach_detach_roundtrip() {
        let mut reg = registry_with(2, 4);
        let rec = reg.detach(nid(0)).unwrap();
        assert_eq!(rec.cluster, cid(0));
        assert!(!rec.honest);
        assert_eq!(reg.population(), 7);
        assert_eq!(reg.byz_population(), 3); // two per cluster, one detached
        assert!(reg.detach(nid(0)).is_none(), "double detach is None");
        reg.attach(nid(0), rec.honest, cid(1));
        assert_eq!(reg.get(nid(0)).unwrap().cluster, cid(1));
        reg.check_invariants().unwrap();
    }

    #[test]
    fn move_updates_both_sides() {
        let mut reg = registry_with(3, 5);
        assert_eq!(reg.move_to(nid(1), cid(2)), Some(cid(0)));
        assert_eq!(reg.get(nid(1)).unwrap().cluster, cid(2));
        assert!(reg.cluster(cid(2)).unwrap().contains(nid(1)));
        assert!(!reg.cluster(cid(0)).unwrap().contains(nid(1)));
        // Self-move is a no-op.
        assert_eq!(reg.move_to(nid(1), cid(2)), Some(cid(2)));
        // Unknown node.
        assert_eq!(reg.move_to(nid(999), cid(0)), None);
        reg.check_invariants().unwrap();
    }

    #[test]
    fn cluster_stats_track_mutations() {
        let mut reg = registry_with(2, 6);
        let s0 = reg.cluster_stats(cid(0)).unwrap();
        assert_eq!(s0.size, 6);
        assert_eq!(s0.byz(), 2);
        reg.move_to(nid(0), cid(1)).unwrap();
        assert_eq!(reg.cluster_stats(cid(0)).unwrap().size, 5);
        assert_eq!(reg.cluster_stats(cid(1)).unwrap().size, 7);
        assert!(reg.cluster_stats(cid(42)).is_none());
    }

    #[test]
    fn sorted_cluster_cache_is_maintained() {
        let mut reg = Registry::new();
        for raw in [5u64, 1, 9, 3] {
            reg.create_cluster(cid(raw));
        }
        assert_eq!(reg.cluster_ids(), &[cid(1), cid(3), cid(5), cid(9)]);
        assert_eq!(reg.cluster_id_at(2), cid(5));
        reg.remove_cluster(cid(5)).unwrap();
        assert_eq!(reg.cluster_ids(), &[cid(1), cid(3), cid(9)]);
        assert!(reg.remove_cluster(cid(5)).is_none());
        let order: Vec<ClusterId> = reg.clusters().map(|c| c.id()).collect();
        assert_eq!(order, vec![cid(1), cid(3), cid(9)]);
        reg.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "created twice")]
    fn duplicate_cluster_rejected() {
        let mut reg = Registry::new();
        reg.create_cluster(cid(1));
        reg.create_cluster(cid(1));
    }

    #[test]
    #[should_panic(expected = "holding")]
    fn removing_populated_cluster_panics() {
        let mut reg = registry_with(1, 3);
        reg.remove_cluster(cid(0));
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn duplicate_attach_rejected() {
        let mut reg = registry_with(2, 1);
        reg.attach(nid(0), true, cid(1));
    }

    /// Freed slab slots are recycled through the freelists, and
    /// recycling bumps the generation so stale indices are detectable.
    #[test]
    fn slabs_recycle_slots_with_fresh_generations() {
        let mut reg = registry_with(2, 2);
        let old_node = reg.node_idx(nid(0)).unwrap();
        reg.detach(nid(0)).unwrap();
        reg.attach(nid(100), true, cid(1));
        let new_node = reg.node_idx(nid(100)).unwrap();
        assert_eq!(new_node.slot, old_node.slot, "freed node slot is reused");
        assert_ne!(new_node.gen, old_node.gen, "recycled slot changed gen");

        let old_cluster = reg.cluster_idx(cid(0)).unwrap();
        for n in reg.cluster(cid(0)).unwrap().member_vec() {
            reg.detach(n).unwrap();
        }
        reg.remove_cluster(cid(0)).unwrap();
        reg.create_cluster(cid(7));
        let new_cluster = reg.cluster_idx(cid(7)).unwrap();
        assert_eq!(new_cluster.slot, old_cluster.slot);
        assert_ne!(new_cluster.gen, old_cluster.gen);
        reg.check_invariants().unwrap();
    }

    #[test]
    fn generation_indices_resolve_while_live() {
        let reg = registry_with(3, 4);
        let idx = reg.cluster_idx(cid(1)).unwrap();
        assert_eq!(reg.cluster_by_idx(idx).id(), cid(1));
        let nidx = reg.node_idx(nid(5)).unwrap();
        assert_eq!(reg.node_by_idx(nidx).cluster, cid(1));
        assert!(reg.cluster_idx(cid(99)).is_none());
        assert!(reg.node_idx(nid(99)).is_none());
    }

    #[test]
    #[should_panic(expected = "stale cluster index")]
    fn stale_cluster_idx_panics() {
        let mut reg = Registry::new();
        reg.create_cluster(cid(0));
        let idx = reg.cluster_idx(cid(0)).unwrap();
        reg.remove_cluster(cid(0)).unwrap();
        // The slot is recycled by a new cluster; the old index must not
        // silently alias it.
        reg.create_cluster(cid(1));
        let _ = reg.cluster_by_idx(idx);
    }

    #[test]
    #[should_panic(expected = "stale node index")]
    fn stale_node_idx_panics() {
        let mut reg = registry_with(1, 2);
        let idx = reg.node_idx(nid(0)).unwrap();
        reg.detach(nid(0)).unwrap();
        let _ = reg.node_by_idx(idx);
    }

    #[test]
    fn invariant_check_is_exhaustive_on_empty() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        reg.check_invariants().unwrap();
    }

    #[test]
    fn wave_shards_mutations_match_direct_registry_calls() {
        let mut direct = registry_with(4, 6);
        let mut sharded = registry_with(4, 6);

        direct.detach(nid(0)).unwrap();
        direct.attach(nid(100), false, cid(2));
        direct.move_to(nid(5), cid(3)).unwrap();

        {
            let shards = sharded.wave_shards();
            let mut h = shards.handle(&[cid(0), cid(2), cid(3)]);
            assert!(h.covers(cid(0)) && !h.covers(cid(1)));
            let rec = h.detach(nid(0)).unwrap();
            assert_eq!(rec.cluster, cid(0));
            h.attach(nid(100), false, cid(2));
            // nid(5) lives in cluster 0 (6 nodes per cluster).
            assert_eq!(h.move_within(nid(5), cid(3)), Some(cid(0)));
            assert_eq!(
                h.cluster_stats(cid(3)).unwrap().size,
                direct.cluster_stats(cid(3)).unwrap().size
            );
            let (dp, db) = shards.deltas();
            assert_eq!((dp, db), (0, 0), "one detach + one attach net out");
            sharded.apply_wave_deltas(dp, db).unwrap();
        }

        assert_eq!(direct.population(), sharded.population());
        assert_eq!(direct.byz_population(), sharded.byz_population());
        assert_eq!(direct.node_ids(), sharded.node_ids());
        for c in 0..4 {
            assert_eq!(
                direct.cluster(cid(c)).unwrap().member_slice(),
                sharded.cluster(cid(c)).unwrap().member_slice()
            );
        }
        sharded.check_invariants().unwrap();
    }

    /// The facade's whole point: handles over disjoint footprints may
    /// run on different threads, and the final registry state is
    /// independent of their interleaving.
    #[test]
    fn disjoint_handles_mutate_concurrently() {
        let mut reg = registry_with(8, 8); // 64 nodes, ids 0..64
        {
            let shards = reg.wave_shards();
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let shards = &shards;
                    s.spawn(move || {
                        // Thread t owns clusters 2t and 2t+1.
                        let fp = [cid(2 * t), cid(2 * t + 1)];
                        let mut h = shards.handle(&fp);
                        // Detach one member, move another across the
                        // footprint, attach a fresh node.
                        h.detach(nid(2 * t * 8)).unwrap();
                        h.move_within(nid(2 * t * 8 + 1), cid(2 * t + 1)).unwrap();
                        h.attach(nid(1000 + t), t % 2 == 0, cid(2 * t + 1));
                    });
                }
            });
            let (dp, db) = shards.deltas();
            assert_eq!(dp, 0, "4 detaches + 4 attaches net out");
            reg.apply_wave_deltas(dp, db).unwrap();
        }
        reg.check_invariants().unwrap();
        assert_eq!(reg.population(), 64);
        for t in 0..4u64 {
            assert!(!reg.contains(nid(2 * t * 8)));
            assert!(reg.contains(nid(1000 + t)));
            assert_eq!(reg.get(nid(2 * t * 8 + 1)).unwrap().cluster, cid(2 * t + 1));
        }
    }

    #[test]
    #[should_panic(expected = "escaped its footprint")]
    #[cfg(debug_assertions)]
    fn handle_escape_is_caught() {
        let mut reg = registry_with(3, 4);
        let shards = reg.wave_shards();
        let mut h = shards.handle(&[cid(0)]);
        // nid(4) lives in cluster 1 — outside the footprint.
        let _ = h.detach(nid(4));
    }

    #[test]
    fn move_any_between_clusters() {
        let mut reg = registry_with(17, 2);
        {
            let shards = reg.wave_shards();
            // Exercise cross-cluster moves, the no-op path, and the
            // unknown-node case through the facade.
            assert_eq!(shards.move_any(nid(0), cid(16)), Some(cid(0)));
            assert_eq!(shards.move_any(nid(1), cid(1)), Some(cid(0)));
            assert_eq!(shards.move_any(nid(1), cid(1)), Some(cid(1)), "no-op");
            assert_eq!(shards.move_any(nid(9999), cid(1)), None);
            assert!(shards.contains_cluster(cid(1)));
            assert!(!shards.contains_cluster(cid(999)));
            assert_eq!(shards.node_record(nid(1)).unwrap().cluster, cid(1));
            assert_eq!(shards.deltas(), (0, 0));
        }
        reg.check_invariants().unwrap();
    }

    /// The seed's map-backed registry semantics, kept as a test-only
    /// reference shadow: one `BTreeMap` per cluster plus a node→home
    /// map, with the same aggregate counters the slab store caches. The
    /// equivalence proptest below drives it in lockstep with the slab
    /// registry to pin that the flat-memory rewrite changed *layout
    /// only*, never observable state.
    #[derive(Default)]
    struct ShadowRegistry {
        clusters: std::collections::BTreeMap<ClusterId, std::collections::BTreeMap<NodeId, bool>>,
        homes: std::collections::BTreeMap<NodeId, ClusterId>,
    }

    impl ShadowRegistry {
        fn population(&self) -> u64 {
            self.homes.len() as u64
        }

        fn byz_population(&self) -> u64 {
            self.clusters
                .values()
                .map(|m| m.values().filter(|&&h| !h).count() as u64)
                .sum()
        }

        fn attach(&mut self, node: NodeId, honest: bool, cluster: ClusterId) {
            assert!(self.clusters.contains_key(&cluster));
            assert!(self.homes.insert(node, cluster).is_none());
            self.clusters
                .get_mut(&cluster)
                .unwrap()
                .insert(node, honest);
        }

        fn detach(&mut self, node: NodeId) -> Option<(bool, ClusterId)> {
            let home = self.homes.remove(&node)?;
            let honest = self.clusters.get_mut(&home).unwrap().remove(&node).unwrap();
            Some((honest, home))
        }

        fn move_to(&mut self, node: NodeId, to: ClusterId) -> Option<ClusterId> {
            let from = *self.homes.get(&node)?;
            if from == to {
                return Some(from);
            }
            let honest = self.clusters.get_mut(&from).unwrap().remove(&node).unwrap();
            self.clusters.get_mut(&to).unwrap().insert(node, honest);
            self.homes.insert(node, to);
            Some(from)
        }

        /// Asserts every observable of the slab registry against the
        /// map-backed reference, bit for bit.
        fn assert_equals(&self, reg: &Registry) {
            assert_eq!(reg.population(), self.population());
            assert_eq!(reg.byz_population(), self.byz_population());
            let shadow_nodes: Vec<NodeId> = self.homes.keys().copied().collect();
            assert_eq!(reg.node_ids(), shadow_nodes, "node id set + order");
            let shadow_clusters: Vec<ClusterId> = self.clusters.keys().copied().collect();
            assert_eq!(reg.cluster_ids(), shadow_clusters, "cluster id set + order");
            for (&c, members) in &self.clusters {
                let cluster = reg.cluster(c).expect("shadow cluster is live");
                let shadow_members: Vec<NodeId> = members.keys().copied().collect();
                assert_eq!(cluster.member_slice(), shadow_members);
                assert_eq!(
                    cluster.byz_count(),
                    members.values().filter(|&&h| !h).count()
                );
            }
            for (&n, &home) in &self.homes {
                let rec = reg.get(n).expect("shadow node is live");
                assert_eq!(rec.cluster, home);
                assert_eq!(rec.honest, self.clusters[&home][&n]);
            }
            reg.check_invariants().unwrap();
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Drives the slab-backed registry and the seed-semantics map
        /// shadow through the same randomized script — direct mutators
        /// and the wave facade alike — and demands bit-equal
        /// observables after every step. Slot recycling is exercised on
        /// purpose: cluster removal/recreation and node churn force the
        /// freelists and generation bumps into play mid-script.
        #[test]
        fn flat_core_equals_seed_semantics(
            script in proptest::collection::vec((0u8..6, any::<u16>(), any::<bool>()), 1..160),
        ) {
            let mut reg = Registry::new();
            let mut shadow = ShadowRegistry::default();
            let mut next_node = 0u64;
            let mut next_cluster = 0u64;
            // Deferred wave segment: facade ops queued and applied in
            // one batch through `wave_shards`, mirroring the executor's
            // canonical serial effect pass.
            let mut wave_ops: Vec<(u8, NodeId, ClusterId)> = Vec::new();

            for (op, pick, honest) in script {
                let pick = pick as usize;
                match op {
                    // Create a fresh cluster.
                    0 => {
                        let c = cid(next_cluster);
                        next_cluster += 1;
                        reg.create_cluster(c);
                        shadow.clusters.insert(c, Default::default());
                    }
                    // Remove an empty cluster, if any (recycles a slot).
                    1 => {
                        let empty: Vec<ClusterId> = shadow
                            .clusters
                            .iter()
                            .filter(|(_, m)| m.is_empty())
                            .map(|(&c, _)| c)
                            .collect();
                        if !empty.is_empty() {
                            let c = empty[pick % empty.len()];
                            let removed = reg.remove_cluster(c).expect("live empty cluster");
                            prop_assert!(removed.is_empty());
                            shadow.clusters.remove(&c);
                        }
                    }
                    // Attach a fresh node.
                    2 => {
                        if !shadow.clusters.is_empty() {
                            let cs: Vec<ClusterId> = shadow.clusters.keys().copied().collect();
                            let c = cs[pick % cs.len()];
                            let n = nid(next_node);
                            next_node += 1;
                            reg.attach(n, honest, c);
                            shadow.attach(n, honest, c);
                        }
                    }
                    // Detach a live node (recycles a node slot).
                    3 => {
                        let ns: Vec<NodeId> = shadow.homes.keys().copied().collect();
                        if !ns.is_empty() {
                            let n = ns[pick % ns.len()];
                            let rec = reg.detach(n).expect("live node");
                            let (sh_honest, sh_home) = shadow.detach(n).unwrap();
                            prop_assert_eq!(rec.honest, sh_honest);
                            prop_assert_eq!(rec.cluster, sh_home);
                        }
                    }
                    // Move a live node.
                    4 => {
                        let ns: Vec<NodeId> = shadow.homes.keys().copied().collect();
                        let cs: Vec<ClusterId> = shadow.clusters.keys().copied().collect();
                        if !ns.is_empty() && !cs.is_empty() {
                            let n = ns[pick % ns.len()];
                            let to = cs[pick % cs.len()];
                            prop_assert_eq!(reg.move_to(n, to), shadow.move_to(n, to));
                        }
                    }
                    // Queue a facade op for the wave segment below.
                    _ => {
                        let cs: Vec<ClusterId> = shadow.clusters.keys().copied().collect();
                        if !cs.is_empty() {
                            let c = cs[pick % cs.len()];
                            let n = nid(next_node);
                            next_node += 1;
                            wave_ops.push((if honest { 0 } else { 1 }, n, c));
                        }
                    }
                }
                shadow.assert_equals(&reg);
            }

            // Wave segment: apply the queued arrivals (and immediate
            // departures for the odd-tagged half) through the facade,
            // then fold the deltas back — exactly the executor's shape.
            // Ops whose target cluster was removed after queuing are
            // dropped, as the serial maintenance phase would do.
            wave_ops.retain(|(_, _, c)| shadow.clusters.contains_key(c));
            {
                let shards = reg.wave_shards();
                for &(tag, n, c) in &wave_ops {
                    let mut handle = shards.handle(&[c]);
                    handle.attach(n, tag == 0, c);
                    if tag == 1 {
                        prop_assert!(handle.detach(n).is_some());
                    }
                }
                let (pop, byz) = shards.deltas();
                reg.apply_wave_deltas(pop, byz).unwrap();
            }
            for &(tag, n, c) in &wave_ops {
                if tag == 0 {
                    shadow.attach(n, true, c);
                }
            }
            shadow.assert_equals(&reg);
        }
    }
}
