//! System-wide invariant measurement.

use crate::params::SecurityMode;
use crate::system::NowSystem;
use now_net::ClusterId;

/// One O(#C) snapshot of the paper's invariants.
///
/// Theorem 3 says: whp, at every time step of a polynomially long churn
/// sequence, **every** cluster has more than two thirds honest members.
/// The audit reports the worst cluster plus the two protocol-relevant
/// threshold counts (1/3: `randNum` compromised; 1/2: messages
/// forgeable), the cluster-size band of the split/merge rules, and the
/// structural health of the partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemAudit {
    /// Time step at which the audit ran.
    pub time_step: u64,
    /// Current population `n`.
    pub population: u64,
    /// Byzantine nodes currently in the network.
    pub byz_population: u64,
    /// Number of clusters.
    pub cluster_count: usize,
    /// Smallest cluster size.
    pub min_cluster_size: usize,
    /// Largest cluster size.
    pub max_cluster_size: usize,
    /// Mean cluster size.
    pub mean_cluster_size: f64,
    /// Highest Byzantine fraction over all clusters.
    pub worst_byz_fraction: f64,
    /// The cluster attaining it (`None` for an empty system).
    pub worst_cluster: Option<ClusterId>,
    /// Clusters failing the strict > 2/3-honest invariant (the paper's
    /// main-model target; always measured, whatever the mode).
    pub clusters_not_two_thirds_honest: usize,
    /// Clusters failing the honest-strict-majority invariant (Remark 1's
    /// authenticated-mode target; always measured).
    pub clusters_not_majority_honest: usize,
    /// Clusters whose `randNum` is compromised under the deployment's
    /// [`SecurityMode`] (Byzantine ≥ 1/3 in Plain, ≥ 1/2 in
    /// Authenticated).
    pub clusters_rand_num_compromised: usize,
    /// Clusters whose messages the adversary can forge (Byzantine > 1/2;
    /// mode-independent — honest members never co-sign a forgery).
    pub clusters_forgeable: usize,
    /// The substrate mode the deployment runs (determines which of the
    /// two invariant counters is the binding one).
    pub security: SecurityMode,
    /// Whether every cluster size lies within `[k·logN/l, l·k·logN]`
    /// (the merge/split band; a single remaining cluster is exempt from
    /// the lower bound, as merging is impossible).
    pub size_bounds_ok: bool,
}

impl SystemAudit {
    /// Measures `sys` (cheap: no spectral work — see
    /// [`NowSystem::overlay_audit`] for Properties 1–2).
    pub fn measure(sys: &NowSystem) -> Self {
        let mut min_size = usize::MAX;
        let mut max_size = 0usize;
        let mut total = 0usize;
        let mut worst_fraction = 0.0f64;
        let mut worst_cluster = None;
        let mut not_two_thirds = 0usize;
        let mut not_majority = 0usize;
        let mut compromised = 0usize;
        let mut forgeable = 0usize;
        let lo = sys.params().min_cluster_size();
        let hi = sys.params().max_cluster_size();
        let mode = sys.params().security();
        let mut bounds_ok = true;
        let cluster_count = sys.cluster_count();

        for c in sys.clusters() {
            let size = c.size();
            min_size = min_size.min(size);
            max_size = max_size.max(size);
            total += size;
            let frac = c.byz_fraction();
            if frac > worst_fraction || worst_cluster.is_none() {
                worst_fraction = frac;
                worst_cluster = Some(c.id());
            }
            if !c.two_thirds_honest() {
                not_two_thirds += 1;
            }
            if !c.invariant_holds_in(SecurityMode::Authenticated) {
                not_majority += 1;
            }
            if !c.rand_num_secure_in(mode) {
                compromised += 1;
            }
            if c.forgeable() {
                forgeable += 1;
            }
            if size > hi || (size < lo && cluster_count > 1) {
                bounds_ok = false;
            }
        }
        if cluster_count == 0 {
            min_size = 0;
        }
        SystemAudit {
            time_step: sys.time_step(),
            population: sys.population(),
            byz_population: sys.byz_population(),
            cluster_count,
            min_cluster_size: min_size,
            max_cluster_size: max_size,
            mean_cluster_size: if cluster_count == 0 {
                0.0
            } else {
                total as f64 / cluster_count as f64
            },
            worst_byz_fraction: worst_fraction,
            worst_cluster,
            clusters_not_two_thirds_honest: not_two_thirds,
            clusters_not_majority_honest: not_majority,
            clusters_rand_num_compromised: compromised,
            clusters_forgeable: forgeable,
            security: mode,
            size_bounds_ok: bounds_ok,
        }
    }

    /// The headline invariant: every cluster strictly > 2/3 honest.
    pub fn all_two_thirds_honest(&self) -> bool {
        self.clusters_not_two_thirds_honest == 0
    }

    /// Remark 1's invariant: every cluster has an honest strict
    /// majority.
    pub fn all_majority_honest(&self) -> bool {
        self.clusters_not_majority_honest == 0
    }

    /// The invariant that binds for this deployment's [`SecurityMode`]:
    /// > 2/3 honest in Plain, honest majority in Authenticated.
    pub fn invariant_ok(&self) -> bool {
        match self.security {
            SecurityMode::Plain => self.all_two_thirds_honest(),
            SecurityMode::Authenticated => self.all_majority_honest(),
        }
    }

    /// Whether the adversary currently has *any* protocol leverage
    /// (some cluster at or past the 1/3 threshold).
    pub fn adversary_has_leverage(&self) -> bool {
        self.clusters_rand_num_compromised > 0
    }
}

#[cfg(test)]
mod tests {
    use crate::params::NowParams;
    use crate::system::NowSystem;

    fn system(n0: usize, tau: f64, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, tau, seed)
    }

    #[test]
    fn audit_of_fresh_system() {
        // τ = 0.1 with clusters of 20: P(a cluster reaches 1/3) is tiny
        // — the k-dependence Lemma 1 quantifies. (At τ = 0.2 and k = 2
        // the binomial tail is *not* negligible; experiment X-T3 sweeps
        // exactly this.)
        let sys = system(200, 0.1, 1);
        let a = sys.audit();
        assert_eq!(a.population, 200);
        assert_eq!(a.byz_population, 20);
        assert_eq!(a.cluster_count, 10);
        assert!(a.size_bounds_ok);
        assert!(a.all_two_thirds_honest(), "random partition at τ=0.1");
        assert!(!a.adversary_has_leverage());
        assert_eq!(a.clusters_forgeable, 0);
        assert!(a.worst_byz_fraction < 1.0 / 3.0);
        assert!(a.worst_cluster.is_some());
        assert!((a.mean_cluster_size - 20.0).abs() < 1e-9);
    }

    #[test]
    fn audit_flags_polluted_cluster() {
        let mut sys = system(200, 0.2, 2);
        let victim = sys.cluster_ids()[0];
        // Stuff byzantine nodes into the victim (registry surgery).
        for b in sys.byz_node_ids() {
            sys.move_node(b, victim);
        }
        let a = sys.audit();
        assert!(a.worst_byz_fraction > 0.5);
        assert_eq!(a.worst_cluster, Some(victim));
        assert!(a.clusters_not_two_thirds_honest >= 1);
        assert!(a.clusters_rand_num_compromised >= 1);
        assert!(a.clusters_forgeable >= 1);
        assert!(a.adversary_has_leverage());
        assert!(!a.size_bounds_ok, "victim is far oversize now");
    }

    #[test]
    fn audit_tracks_band_violations() {
        let mut sys = system(100, 0.0, 3);
        let c = sys.cluster_ids()[0];
        // Drain one cluster below the band by moving members away.
        let other = sys.cluster_ids()[1];
        while sys.cluster(c).unwrap().size() >= sys.params().min_cluster_size() {
            let m = sys.cluster(c).unwrap().member_at(0);
            sys.move_node(m, other);
        }
        assert!(!sys.audit().size_bounds_ok);
    }

    #[test]
    fn single_cluster_exempt_from_lower_bound() {
        let sys = system(18, 0.0, 4); // below target size, one cluster
        let a = sys.audit();
        assert_eq!(a.cluster_count, 1);
        assert!(a.size_bounds_ok, "lone cluster may be small");
    }

    /// At τ = 0.40 (authenticated mode only) the plain 2/3-honest
    /// target is hopeless while the Remark 1 majority target fails only
    /// on binomial tails. Asserted over a 5-seed quantile ensemble
    /// rather than one pinned seed (ROADMAP "statistical-test
    /// robustness"): the old single-seed form asserted
    /// `all_majority_honest` outright, which the vendored stream
    /// satisfies on only 2 of these 5 seeds — it held only on its
    /// pinned seed. Measured ensemble of worst per-cluster Byzantine
    /// fractions: [0.450, 0.450, 0.500, 0.500, 0.525].
    #[test]
    fn authenticated_mode_binds_the_majority_invariant() {
        use crate::params::{NowParams, SecurityMode};
        let params = NowParams::new_authenticated(1 << 10, 4, 1.5, 0.40, 0.05).unwrap();
        let mut worsts = Vec::new();
        let mut majority_holds = 0usize;
        for seed in [21u64, 22, 23, 24, 25] {
            let sys = NowSystem::init_fast(params, 400, 0.40, seed);
            let a = sys.audit();
            assert_eq!(a.security, SecurityMode::Authenticated);
            // Structural on every seed: at 40% corruption some cluster
            // exceeds 1/3 Byzantine, so the plain target fails, and the
            // binding invariant is the majority one by mode.
            assert!(
                !a.all_two_thirds_honest(),
                "plain target unreachable at τ=0.4 (seed {seed})"
            );
            assert_eq!(
                a.invariant_ok(),
                a.all_majority_honest(),
                "authenticated mode binds the majority invariant (seed {seed})"
            );
            if a.all_majority_honest() {
                majority_holds += 1;
            }
            worsts.push(a.worst_byz_fraction);
        }
        worsts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Statistical, quantile-banded: the majority target is reachable
        // (some seeds are fully majority-honest — the plain target never
        // is), the median seed sits at the 1/2 line or under, and even
        // the worst seed stays within a grazing band of it.
        assert!(
            majority_holds >= 1,
            "majority target unreachable on every seed"
        );
        assert!(
            worsts[worsts.len() / 2] <= 0.50 + 1e-9,
            "median worst fraction beyond 1/2: {worsts:?}"
        );
        assert!(
            *worsts.last().unwrap() < 0.60,
            "worst seed deeply captured: {worsts:?}"
        );
    }

    #[test]
    fn plain_mode_binds_the_two_thirds_invariant() {
        let sys = system(200, 0.1, 7);
        let a = sys.audit();
        assert_eq!(a.security, crate::params::SecurityMode::Plain);
        assert_eq!(a.invariant_ok(), a.all_two_thirds_honest());
        assert!(
            a.all_majority_honest(),
            "2/3-honest implies majority-honest"
        );
    }

    #[test]
    fn honest_only_system_has_zero_fractions() {
        let sys = system(150, 0.0, 5);
        let a = sys.audit();
        assert_eq!(a.byz_population, 0);
        assert_eq!(a.worst_byz_fraction, 0.0);
        assert!(a.all_two_thirds_honest());
    }
}
