//! The system's observability hub: optional flight recorder + metrics
//! registry, threaded through every execution engine.
//!
//! Both sinks are **off by default** (`None`): a system that never
//! calls [`crate::NowSystem::enable_tracing`] /
//! [`crate::NowSystem::enable_metrics`] pays one branch per recording
//! site and allocates nothing. Every recording site sits on the
//! driving-thread (sequential) path — admission, wave stats, canonical
//! effect application, deferred maintenance, the event net's
//! inject/drain loops — so enabled sinks observe the *canonical op
//! order* and their contents are byte-identical at every thread count.
//! Wall-clock readings never reach either sink (lint rule D002 plus
//! CI's `trace-smoke` grep gate).

use now_trace::{FlightRecorder, MetricsRegistry, TraceData};

/// Bucket bounds for the wave-width histogram (`now_wave_width`).
pub(crate) const WAVE_WIDTH_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64];

/// Bucket bounds for the per-wave critical-path rounds histogram
/// (`now_wave_rounds`).
pub(crate) const WAVE_ROUNDS_BOUNDS: &[u64] = &[2, 4, 8, 16, 32, 64, 128];

/// The optional sinks carried by a [`crate::NowSystem`].
#[derive(Debug, Default)]
pub(crate) struct TraceHub {
    pub(crate) recorder: Option<FlightRecorder>,
    pub(crate) metrics: Option<MetricsRegistry>,
}

impl TraceHub {
    /// Records one flight-recorder event (no-op while tracing is off).
    #[inline]
    pub(crate) fn event(&mut self, step: u64, data: TraceData) {
        if let Some(rec) = &mut self.recorder {
            rec.push(step, data);
        }
    }

    /// Adds to a counter (no-op while metrics are off).
    #[inline]
    pub(crate) fn count(&mut self, name: &str, by: u64) {
        if let Some(m) = &mut self.metrics {
            m.inc(name, by);
        }
    }

    /// Sets a gauge (no-op while metrics are off).
    #[inline]
    pub(crate) fn gauge(&mut self, name: &str, value: i64) {
        if let Some(m) = &mut self.metrics {
            m.set_gauge(name, value);
        }
    }

    /// Observes into a histogram (no-op while metrics are off).
    #[inline]
    pub(crate) fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        if let Some(m) = &mut self.metrics {
            m.observe(name, bounds, value);
        }
    }
}
