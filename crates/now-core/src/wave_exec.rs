//! Threaded execution of conflict-free waves — the engine that turns
//! the [`crate::batch`] *schedule* into wall-clock parallelism.
//!
//! PR 2's `step_parallel` schedules a batch into footprint-disjoint
//! waves but still executes the operations one after another;
//! `rounds_parallel` is an estimate, not a measurement. This module
//! adds [`NowSystem::step_parallel_threaded`], which actually runs a
//! wave's operations on worker threads while keeping the run
//! **bit-identical at every thread count** — same admitted ids, same
//! population, same ledger totals, same wave schedule whether the batch
//! runs on 1, 2, or 8 workers.
//!
//! # Worker pool
//!
//! Waves execute on a persistent, channel-fed [`WavePool`]: workers
//! spawn **once per pool** (run-scoped in `now-sim`, campaign-scoped in
//! `now-campaign`, batch-scoped for the convenience entry points) and
//! receive wave-plan jobs over per-worker channels — O(threads) thread
//! spawns per run, not the O(waves·threads) the original scoped
//! executor paid, which dominated conflict-heavy batches whose waves
//! are narrow. Workers claim operations through an atomic cursor and
//! write plans into positional slots, so pooled, scoped
//! ([`NowSystem::step_parallel_scoped_specs`], retained as the
//! reference), and sequential planning are bit-identical; property
//! tests and the CI smoke gates pin all three equal.
//!
//! # How determinism survives threading
//!
//! Three mechanisms, mirrored by `vendor/README.md`'s determinism
//! notes:
//!
//! 1. **Plan/apply split.** Each operation is *planned* by a pure
//!    kernel ([`Planner`]) that reads the immutable pre-wave state
//!    (registry + overlay are shared read-only across workers) through
//!    a copy-on-read *view* that overlays the operation's own effects —
//!    snapshot-isolation semantics. Planning emits an [`OpPlan`]: the
//!    op's registry effects, its private ledger, and a deferred
//!    split/merge check. Plans are pure functions of `(pre-wave state,
//!    op, substream)`, so the thread that computes one is irrelevant.
//! 2. **Per-operation substreams.** Every operation draws from a
//!    ChaCha12 stream derived via [`DetRng::for_op`] from `(master,
//!    time_step, canonical op index)` — never from the shared system
//!    generator — so thread interleaving cannot perturb anyone's
//!    randomness. The master key is a single draw from the system
//!    stream per batch.
//! 3. **Canonical merge.** Effects, ledger deltas
//!    ([`Ledger::merge_child`]), and deferred maintenance apply on the
//!    driving thread in canonical batch order (departures before
//!    arrivals, each in input order). Footprint-local effects go
//!    through the wave's [`crate::registry::WaveShards`] handles —
//!    whose debug assertions enforce that a handle never escapes its
//!    footprint — and relocations that legitimately escape (exchange
//!    partners are walk-chosen anywhere) use the facade's unconfined
//!    path.
//!
//! # Model semantics (and how they differ from `step_parallel`)
//!
//! The engine defines a *parallel deployment* of the §2-footnote batch:
//! operations of one wave observe the pre-wave state plus their own
//! effects, exactly as genuinely concurrent admissions would; a node
//! claimed by two concurrent relocations resolves to the canonical
//! winner (later-applied move wins; a move of a node that already
//! departed is dropped). Split/merge maintenance runs after the wave
//! whose operations triggered it, accounted as sibling spans of the
//! batch rather than nested inside the triggering operation: first
//! each op's own host/home in canonical order, then a deterministic
//! sweep over every other cluster the wave's effects touched —
//! conflict resolution can net-change the size of clusters that are
//! nobody's host or home, and the size band must hold there too.
//! Because
//! randomness is consumed per-operation instead of from one shared
//! stream, outcomes differ from the serial `step_parallel` path for the
//! same seed — by design; the bit-equality contract is *across thread
//! counts of this engine*, which the property tests pin.
//!
//! A strategic [`Malice`] implementation is a single stateful oracle
//! whose hook-call order is protocol-visible, so non-neutral adversaries
//! plan sequentially in canonical order (the results still do not
//! depend on the requested thread count). The neutral default plans on
//! workers.

use crate::batch::{BatchReport, WaveStats};
use crate::error::NowError;
use crate::malice::{Malice, RandNumContext, RandNumPurpose};
use crate::params::{NowParams, SecurityMode};
use crate::registry::Registry;
use crate::system::NowSystem;
use now_net::{ClusterId, Cost, CostKind, DetRng, Ledger, NodeId};
use now_over::Overlay;
use now_trace::{SpanTotal, TraceData};
use rand::{Rng, RngCore};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Canonical normalization of the `threads` knob, shared by **every**
/// entry point that accepts one ([`WavePool::new`], the scoped
/// executor, `now-sim`'s `BatchExec::Threaded`, the campaign runner's
/// per-phase exec knob): `0` means "unspecified" and is treated as 1
/// worker. Centralized so no call site can drift to a different rule.
pub fn normalize_threads(threads: usize) -> usize {
    threads.max(1)
}

/// Monotone count of wave-worker threads this process has ever spawned
/// (pooled workers and legacy scoped workers alike). Tests use the
/// delta around a run to assert the pool's O(threads)-spawns-per-run
/// guarantee; note the counter is process-global, so such assertions
/// must not share a test binary with concurrently spawning tests.
static WAVE_WORKER_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// Current value of the process-global wave-worker spawn counter.
pub fn wave_worker_spawn_total() -> u64 {
    WAVE_WORKER_SPAWNS.load(Ordering::Relaxed)
}

/// Process-global nanoseconds the driving thread has spent in the
/// planning phase of [`NowSystem::execute_wave`] (wall clock around the
/// plan dispatch, including the block on pool workers). Benchmarks take
/// deltas around a run to report planning's share of step wall clock.
static WAVE_PLAN_NANOS: SpanTotal = SpanTotal::new();

/// Current value of the process-global planning-phase wall-clock
/// counter, in nanoseconds.
pub fn wave_plan_nanos_total() -> u64 {
    WAVE_PLAN_NANOS.total()
}

/// One batched operation, with the footprint the wave partition was
/// computed from.
pub(crate) struct OpSpec {
    pub(crate) op: PlannedOp,
    pub(crate) footprint: Vec<ClusterId>,
    /// The operation's **canonical index** in the batch (departures
    /// before arrivals, each in input order): the key of its
    /// [`DetRng::for_op`] substream. Stored on the spec so executors
    /// that *reorder* operations (the event engine executes in network
    /// delivery order) still hand every op the stream its canonical
    /// position owns.
    pub(crate) canon: u64,
    /// The cluster the operation coordinates through (the leaver's
    /// home, the joiner's contact): the event engine's delivery port.
    pub(crate) center: ClusterId,
    /// Whether a join's steered contact was already dead at batch
    /// admission and degraded to the uniform draw (always `false` for
    /// leaves). Folded with the plan-time redraw into at most **one**
    /// counted redraw per operation, matching the scheduled engine's
    /// resolve-once-per-op semantics.
    pub(crate) contact_redrawn: bool,
}

pub(crate) enum PlannedOp {
    Leave {
        node: NodeId,
    },
    Join {
        node: NodeId,
        honest: bool,
        contact: ClusterId,
    },
}

/// A registry mutation planned by a kernel, applied canonically later.
enum Effect {
    Detach {
        node: NodeId,
    },
    Attach {
        node: NodeId,
        honest: bool,
        cluster: ClusterId,
    },
    Move {
        node: NodeId,
        to: ClusterId,
    },
}

/// Size-triggered maintenance deferred to the post-wave serial phase.
enum Maintenance {
    /// Re-check the join's host for an oversize split.
    Split(ClusterId),
    /// Re-check the leave's home for an undersize merge.
    Merge(ClusterId),
}

/// The pure result of planning one operation.
struct OpPlan {
    effects: Vec<Effect>,
    ledger: Ledger,
    /// Inclusive cost of the operation's top-level span.
    cost: Cost,
    maintenance: Maintenance,
    /// Whether a steered contact had been dissolved by an earlier
    /// wave's merge and was re-drawn uniformly at plan time.
    contact_redrawn: bool,
}

/// Immutable pre-wave state shared (read-only) across planner threads.
struct WaveCtx<'a> {
    registry: &'a Registry,
    overlay: &'a Overlay,
    params: NowParams,
    recording: bool,
}

/// A cluster as one operation sees it: pre-wave membership overlaid
/// with the operation's own effects.
struct ViewCluster {
    /// Members in ascending id order (mirrors `Cluster`'s set order).
    members: Vec<NodeId>,
    byz: usize,
}

/// The pure planning kernel: interprets one join/leave against the
/// wave context, mirroring the serial operation semantics of
/// [`crate::ops`] / [`crate::exchange`] / [`crate::rand_cl`] — same
/// draw order, same ledger spans — but reading through the op's view
/// and emitting effects instead of mutating shared state.
struct Planner<'c, 'a> {
    ctx: &'c WaveCtx<'a>,
    rng: DetRng,
    ledger: Ledger,
    effects: Vec<Effect>,
    view: BTreeMap<ClusterId, ViewCluster>,
    /// Home overrides for nodes this op moved (`None` = departed).
    homes: BTreeMap<NodeId, Option<ClusterId>>,
    /// The op's own arrival, if any (honesty is not in the registry yet).
    joiner: Option<(NodeId, bool)>,
    /// Present only when a non-neutral adversary serializes planning.
    malice: Option<&'c mut (dyn Malice + 'static)>,
}

impl<'c, 'a> Planner<'c, 'a> {
    fn new(
        ctx: &'c WaveCtx<'a>,
        rng: DetRng,
        malice: Option<&'c mut (dyn Malice + 'static)>,
    ) -> Self {
        Planner {
            ctx,
            rng,
            ledger: if ctx.recording {
                Ledger::recording()
            } else {
                Ledger::new()
            },
            effects: Vec::new(),
            view: BTreeMap::new(),
            homes: BTreeMap::new(),
            joiner: None,
            malice,
        }
    }

    // ---------------------------------------------------------------
    // View maintenance.
    // ---------------------------------------------------------------

    fn view_mut(&mut self, c: ClusterId) -> &mut ViewCluster {
        let reg = self.ctx.registry;
        self.view.entry(c).or_insert_with(|| {
            // INVARIANT: every cluster id reaching a plan view comes
            // from this wave's footprint, which only names live
            // clusters (maintenance runs serially between waves).
            let cluster = reg.cluster(c).expect("plan touches live clusters");
            ViewCluster {
                members: cluster.member_vec(),
                byz: cluster.byz_count(),
            }
        })
    }

    fn size(&mut self, c: ClusterId) -> u64 {
        self.view_mut(c).members.len() as u64
    }

    fn view_members(&mut self, c: ClusterId) -> Vec<NodeId> {
        self.view_mut(c).members.clone()
    }

    fn member_at(&mut self, c: ClusterId, idx: usize) -> NodeId {
        self.view_mut(c).members[idx]
    }

    fn contains_member(&mut self, c: ClusterId, n: NodeId) -> bool {
        self.view_mut(c).members.binary_search(&n).is_ok()
    }

    /// `(size, secure under Plain, secure under the deployment mode)` —
    /// the triple every walk hop and `randNum` gate needs.
    fn cluster_security(&mut self, c: ClusterId) -> (u64, bool, bool) {
        let mode = self.ctx.params.security();
        let v = self.view_mut(c);
        let size = v.members.len();
        let plain = size > 0 && SecurityMode::Plain.rand_num_secure(v.byz, size);
        let secure = size > 0 && mode.rand_num_secure(v.byz, size);
        (size as u64, plain, secure)
    }

    fn honesty(&self, n: NodeId) -> bool {
        if let Some((joiner, honest)) = self.joiner {
            if joiner == n {
                return honest;
            }
        }
        // INVARIANT: honesty is only queried for members of the wave's
        // own view clusters (plus the joiner handled above), all of
        // which are registered for the whole wave.
        self.ctx
            .registry
            .get(n)
            .expect("honesty of a live node")
            .honest
    }

    fn home_of(&self, n: NodeId) -> Option<ClusterId> {
        match self.homes.get(&n) {
            Some(over) => *over,
            None => self.ctx.registry.get(n).map(|r| r.cluster),
        }
    }

    fn insert_member(&mut self, c: ClusterId, n: NodeId, honest: bool) {
        let v = self.view_mut(c);
        let pos = v
            .members
            .binary_search(&n)
            .expect_err("member absent from view");
        v.members.insert(pos, n);
        if !honest {
            v.byz += 1;
        }
    }

    fn remove_member(&mut self, c: ClusterId, n: NodeId, honest: bool) {
        let v = self.view_mut(c);
        // INVARIANT: callers only remove a node from the cluster the
        // view itself reported as its home, so the sorted member vec
        // must contain it.
        let pos = v.members.binary_search(&n).expect("member present in view");
        v.members.remove(pos);
        if !honest {
            v.byz -= 1;
        }
    }

    fn attach_node(&mut self, n: NodeId, honest: bool, c: ClusterId) {
        self.joiner = Some((n, honest));
        self.insert_member(c, n, honest);
        self.homes.insert(n, Some(c));
        self.effects.push(Effect::Attach {
            node: n,
            honest,
            cluster: c,
        });
    }

    fn detach_node(&mut self, n: NodeId) {
        // INVARIANT: leave planning pre-validates the leaver against
        // the registry before the wave starts, and no other op in the
        // same wave shares its footprint.
        let from = self.home_of(n).expect("detaching a live node");
        let honest = self.honesty(n);
        self.remove_member(from, n, honest);
        self.homes.insert(n, None);
        self.effects.push(Effect::Detach { node: n });
    }

    fn move_node(&mut self, n: NodeId, to: ClusterId) {
        // INVARIANT: moves originate from exchange/walk steps over
        // members of this wave's own view, which are live by
        // construction.
        let from = self.home_of(n).expect("moving a live node");
        if from == to {
            return;
        }
        let honest = self.honesty(n);
        self.remove_member(from, n, honest);
        self.insert_member(to, n, honest);
        self.homes.insert(n, Some(to));
        self.effects.push(Effect::Move { node: n, to });
    }

    /// Overlay neighbors of `c`, borrowed straight from the frozen
    /// overlay for the wave's lifetime `'a` — so the slice can be held
    /// across the planner's own `&mut self` draws without a copy.
    fn neighbor_list(&self, c: ClusterId) -> &'a [ClusterId] {
        self.ctx.overlay.neighbors(c)
    }

    // ---------------------------------------------------------------
    // Primitive mirrors (draw order and ledger spans match the serial
    // implementations bit for bit under a neutral adversary).
    // ---------------------------------------------------------------

    fn rand_num(&mut self, c: ClusterId, range: u64, purpose: RandNumPurpose) -> u64 {
        let range = range.max(1);
        let (size, _, secure) = self.cluster_security(c);
        self.ledger.begin(CostKind::RandNum);
        self.ledger.add_messages(2 * size * size.saturating_sub(1));
        self.ledger.add_rounds(2);
        self.ledger.end();
        if secure {
            self.rng.gen_range(0..range)
        } else if let Some(malice) = self.malice.as_mut() {
            let ctx = RandNumContext {
                cluster: c,
                purpose,
            };
            malice.rand_num(range, ctx, &mut self.rng)
        } else {
            // Neutral-adversary planning: `NoMalice::rand_num` is the
            // same uniform draw, so the streams coincide.
            self.rng.gen_range(0..range)
        }
    }

    /// Mirror of [`NowSystem::rand_cl_from`] against the op's view.
    fn rand_cl(&mut self, start: ClusterId) -> ClusterId {
        self.ledger.begin(CostKind::RandCl);
        let m = self.ctx.overlay.vertex_count();
        if m <= 1 {
            self.ledger.end();
            return start;
        }
        let duration = self.ctx.params.ctrw_duration(m);
        let mut current = start;
        const RES: u64 = 1 << 24;
        let hop_cap = 2_000 + 200 * (m as u64);
        let mut hops = 0u64;
        for _restart in 0..=self.ctx.params.max_walk_restarts() {
            let mut remaining = duration;
            loop {
                if hops >= hop_cap {
                    self.ledger.end();
                    return current;
                }
                let nbrs = self.neighbor_list(current);
                let degree = nbrs.len();
                let (size, secure_plain, _) = self.cluster_security(current);
                if degree == 0 {
                    break;
                }
                let u = self.rand_num(current, RES, RandNumPurpose::WalkHoldingTime);
                let unit = (u as f64 + 1.0) / (RES as f64 + 1.0);
                let hold = -unit.ln() / degree as f64;
                if hold >= remaining {
                    break;
                }
                remaining -= hold;
                let idx = self.rand_num(current, degree as u64, RandNumPurpose::WalkNeighborChoice)
                    as usize;
                // INVARIANT: `degree = nbrs.len() > 0` (checked at loop
                // entry) and the draw is over 0..degree; the `min` is
                // belt-and-braces against a future draw-range change.
                let mut next = nbrs[idx.min(nbrs.len() - 1)];
                if !secure_plain {
                    if let Some(malice) = self.malice.as_mut() {
                        if let Some(forced) = malice.walk_hop(nbrs, &mut self.rng) {
                            if nbrs.contains(&forced) {
                                next = forced;
                            }
                        }
                    }
                }
                let to_size = self.size(next);
                self.ledger.add_messages(size * to_size);
                self.ledger.add_rounds(1);
                hops += 1;
                current = next;
            }
            let (size, _, _) = self.cluster_security(current);
            let p_accept = self.ctx.params.acceptance_probability(size as usize);
            let draw = self.rand_num(current, RES, RandNumPurpose::WalkAcceptance);
            if (draw as f64 + 0.5) / RES as f64 <= p_accept {
                self.ledger.end();
                return current;
            }
        }
        self.ledger.end();
        current
    }

    /// Mirror of the serial `exchange_single`.
    fn exchange_single(&mut self, c: ClusterId) -> BTreeSet<ClusterId> {
        self.ledger.begin(CostKind::Exchange);
        let mut members = self.view_members(c);
        if let Some(cap) = self.ctx.params.exchange_cap() {
            if cap < members.len() {
                let picks = now_graph::sample::sample_distinct(members.len(), cap, &mut self.rng);
                members = picks.into_iter().map(|i| members[i]).collect();
            }
        }
        let mut receivers = BTreeSet::new();
        for x in members {
            if self.home_of(x).map(|home| home != c).unwrap_or(true) {
                continue;
            }
            let partner = self.rand_cl(c);
            if partner == c {
                continue;
            }
            let partner_size = self.size(partner) as usize;
            if partner_size == 0 {
                continue;
            }
            let idx =
                self.rand_num(partner, partner_size as u64, RandNumPurpose::MemberIndex) as usize;
            let mut y = self.member_at(partner, idx.min(partner_size - 1));
            let (_, _, partner_secure) = self.cluster_security(partner);
            if !partner_secure && self.malice.is_some() {
                let labeled: Vec<(NodeId, bool)> = self
                    .view_members(partner)
                    .into_iter()
                    .map(|m| (m, self.honesty(m)))
                    .collect();
                // INVARIANT: guarded by `self.malice.is_some()` in the
                // enclosing condition; the borrow is re-taken only to
                // split it from `self.rng`.
                let forced = self
                    .malice
                    .as_mut()
                    .expect("checked above")
                    .exchange_victim(&labeled, &mut self.rng);
                if let Some(forced) = forced {
                    if self.contains_member(partner, forced) {
                        y = forced;
                    }
                }
            }
            self.move_node(x, partner);
            self.move_node(y, c);
            receivers.insert(partner);
            let size_c = self.size(c);
            let size_p = self.size(partner);
            self.ledger.add_messages(size_c + size_p);
            self.ledger.add_rounds(1);
        }
        self.account_neighbor_notification(c);
        let partners: Vec<ClusterId> = receivers.iter().copied().collect();
        for partner in partners {
            self.account_neighbor_notification(partner);
        }
        self.ledger.end();
        receivers
    }

    fn exchange_all(&mut self, c: ClusterId, cascade: bool) {
        let receivers = self.exchange_single(c);
        if cascade {
            for &partner in &receivers {
                self.exchange_single(partner);
            }
        }
    }

    fn account_neighbor_notification(&mut self, c: ClusterId) {
        let size = self.size(c);
        let nbrs = self.neighbor_list(c);
        let mut msgs = 0u64;
        for &nbr in nbrs {
            msgs += size * self.size(nbr);
        }
        self.ledger.add_messages(msgs);
        self.ledger.add_rounds(1);
    }

    // ---------------------------------------------------------------
    // Operation kernels.
    // ---------------------------------------------------------------

    fn plan_join(&mut self, node: NodeId, honest: bool, contact: ClusterId) -> Maintenance {
        self.ledger.begin(CostKind::Join);
        let host = self.rand_cl(contact);
        self.attach_node(node, honest, host);
        let host_size = self.size(host);
        self.ledger.add_messages(host_size);
        self.ledger.add_rounds(1);
        self.account_neighbor_notification(host);
        self.ledger.add_messages(host_size);
        self.ledger.add_rounds(1);
        if self.ctx.params.shuffle_enabled() {
            self.exchange_all(host, false);
        }
        self.ledger.end();
        Maintenance::Split(host)
    }

    fn plan_leave(&mut self, node: NodeId) -> Maintenance {
        // INVARIANT: batch admission rejects leaves of unregistered
        // nodes before specs are formed, so the leaver has a home.
        let home = self.home_of(node).expect("pre-validated leaver");
        self.ledger.begin(CostKind::Leave);
        self.detach_node(node);
        let size = self.size(home);
        self.ledger.add_messages(size);
        self.ledger.add_rounds(1);
        self.account_neighbor_notification(home);
        if self.ctx.params.shuffle_enabled() {
            let cascade = self.ctx.params.cascade_enabled();
            self.exchange_all(home, cascade);
        }
        self.ledger.end();
        Maintenance::Merge(home)
    }
}

/// Plans one operation; pure in `(ctx, spec, rng)` when `malice` is
/// `None`.
fn plan_op(
    ctx: &WaveCtx<'_>,
    spec: &OpSpec,
    rng: DetRng,
    malice: Option<&mut (dyn Malice + 'static)>,
) -> OpPlan {
    let mut planner = Planner::new(ctx, rng, malice);
    let mut contact_redrawn = false;
    let maintenance = match spec.op {
        PlannedOp::Leave { node } => planner.plan_leave(node),
        PlannedOp::Join {
            node,
            honest,
            contact,
        } => {
            // The contact drawn at batch admission can have been
            // dissolved by an earlier wave's merge; re-draw uniformly
            // over all live clusters from the op's own substream
            // (deterministic) — the same rule the serial path
            // (`NowSystem::join`) and the scheduled engine
            // (`step_parallel_specs`) apply to a stale contact, driven
            // by a different stream.
            let contact = if ctx.registry.contains_cluster(contact) {
                contact
            } else {
                contact_redrawn = true;
                let idx = planner.rng.gen_range(0..ctx.registry.cluster_count());
                ctx.registry.cluster_id_at(idx)
            };
            planner.plan_join(node, honest, contact)
        }
    };
    OpPlan {
        cost: planner.ledger.total(),
        effects: planner.effects,
        ledger: planner.ledger,
        maintenance,
        contact_redrawn,
    }
}

/// The worker claim loop shared by the pooled and scoped executors:
/// claim the next op via the atomic cursor, derive its substream, plan
/// it, and park the plan in its positional slot. Because both executors
/// run this exact loop against the same `(master, time_step, canon)`
/// keying, their outputs are bit-identical however claims interleave —
/// and identical to the sequential path.
fn claim_and_plan(
    ctx: &WaveCtx<'_>,
    specs: &[OpSpec],
    slots: &[Mutex<Option<OpPlan>>],
    cursor: &AtomicUsize,
    master: u64,
    time_step: u64,
) {
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= specs.len() {
            break;
        }
        let rng = DetRng::for_op(master, time_step, specs[i].canon);
        let plan = plan_op(ctx, &specs[i], rng, None);
        // A poisoned slot means another worker panicked mid-wave. That
        // first panic is re-raised by the executor after quiescence;
        // cascading a second one here would only bury it, so this
        // worker just stops claiming.
        let Ok(mut slot) = slots[i].lock() else {
            return;
        };
        *slot = Some(plan);
    }
}

/// Single-worker planning: the canonical sequential order every
/// parallel execution must reproduce bit for bit.
fn plan_wave_sequential(
    ctx: &WaveCtx<'_>,
    specs: &[OpSpec],
    master: u64,
    time_step: u64,
) -> Vec<OpPlan> {
    specs
        .iter()
        .map(|spec| {
            let rng = DetRng::for_op(master, time_step, spec.canon);
            plan_op(ctx, spec, rng, None)
        })
        .collect()
}

/// Drains the positional slots into the wave's plan vector.
///
/// Only called after the executor has observed every worker finish
/// cleanly (a worker panic is re-raised before collection).
fn collect_slots(slots: Vec<Mutex<Option<OpPlan>>>) -> Vec<OpPlan> {
    slots
        .into_iter()
        .map(|slot| {
            // INVARIANT: all workers completed without panicking (the
            // executor re-raised any panic before collecting), so no
            // slot is poisoned and the claim cursor covered every op.
            slot.into_inner()
                .expect("plan slot poisoned")
                .expect("every op planned")
        })
        .collect()
}

/// The **legacy scoped executor**: plans a wave on up to `threads`
/// freshly spawned scoped workers (plain sequential planning when the
/// wave or the thread budget is width 1). Kept as the determinism and
/// spawn-overhead reference for [`WavePool`] — `bench_wave_exec`
/// measures pooled vs scoped, and the property tests pin them
/// bit-equal. Spawns O(waves·threads) threads per run, which is exactly
/// the overhead the pool removes.
fn plan_wave_scoped(
    ctx: &WaveCtx<'_>,
    specs: &[OpSpec],
    master: u64,
    time_step: u64,
    threads: usize,
) -> Vec<OpPlan> {
    let n = specs.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return plan_wave_sequential(ctx, specs, master, time_step);
    }
    let slots: Vec<Mutex<Option<OpPlan>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    // Legacy scoped spawner, kept as the bench/CI reference engine; with
    // WavePool::new below, one of this file's two sanctioned spawn sites
    // (lint.toml D003 allow — gated by tests/pool_spawn_accounting.rs).
    std::thread::scope(|scope| {
        for _ in 0..workers {
            WAVE_WORKER_SPAWNS.fetch_add(1, Ordering::Relaxed);
            scope.spawn(|| claim_and_plan(ctx, specs, &slots, &cursor, master, time_step));
        }
    });
    collect_slots(slots)
}

// -------------------------------------------------------------------
// The persistent wave-worker pool.
// -------------------------------------------------------------------

/// One wave's planning work, type-erased for transport to pool workers.
///
/// The pointers reference the driving thread's stack frame for the
/// current wave (context, specs, slots, cursor). They are only valid
/// during the wave's dispatch window; see the safety contract on
/// [`WavePool::plan_wave`].
struct WaveJob {
    /// Erased `&WaveCtx<'_>` (the lifetime is collapsed for transport;
    /// workers only dereference it inside the dispatch window).
    ctx: *const WaveCtx<'static>,
    specs: *const OpSpec,
    slots: *const Mutex<Option<OpPlan>>,
    cursor: *const AtomicUsize,
    len: usize,
    master: u64,
    time_step: u64,
}

// SAFETY: a `WaveJob` is an inert bundle of pointers plus plain keying
// data. The pointees (`WaveCtx`, `OpSpec`s, slot mutexes, cursor) are
// all `Sync` — workers only read the context/specs and synchronize slot
// writes through the mutexes and the atomic cursor — and the driving
// thread guarantees they outlive every worker access by blocking until
// all completion signals for the wave have been received.
#[allow(unsafe_code)]
unsafe impl Send for WaveJob {}

/// Executes one job: reconstitute the wave references and run the
/// shared claim loop.
fn run_wave_job(job: &WaveJob) {
    // SAFETY: `WavePool::plan_wave` keeps the pointees alive (and the
    // specs/slots slices exactly `len` long) until it has received one
    // completion signal per dispatched job, and this function runs
    // strictly before that job's signal is sent. The collapsed `'static`
    // on the context is never exposed: the reference is used only within
    // this call, inside the dispatch window.
    #[allow(unsafe_code)]
    let (ctx, specs, slots, cursor) = unsafe {
        (
            &*job.ctx,
            std::slice::from_raw_parts(job.specs, job.len),
            std::slice::from_raw_parts(job.slots, job.len),
            &*job.cursor,
        )
    };
    claim_and_plan(ctx, specs, slots, cursor, job.master, job.time_step);
}

/// A worker thread of the pool: its private job channel plus the join
/// handle (each worker owns its own receiver, so dispatching a wave to
/// `k` workers is `k` sends and waking is exact — no shared-queue
/// stampede).
struct PoolWorker {
    job_tx: mpsc::Sender<WaveJob>,
    handle: std::thread::JoinHandle<()>,
}

/// A persistent, channel-fed wave-worker pool: **one spawn per run, not
/// per wave**.
///
/// The scoped executor of PR 3 re-spawned `threads` OS threads for
/// every wave of width ≥ 2, so conflict-heavy batches that schedule
/// into hundreds of narrow waves paid spawn overhead hundreds of times
/// per step. A `WavePool` spawns its workers once, at construction, and
/// feeds them wave-plan jobs over per-worker channels; workers claim
/// operations through the same atomic cursor and write plans into the
/// same positional slots as the scoped path, so the output is
/// **bit-identical** to the scoped executor (and the sequential path)
/// at every thread count — the property tests pin all three equal.
///
/// * `threads == 1` (or 0, see [`normalize_threads`]) spawns **no**
///   workers: planning runs inline on the driving thread.
/// * `threads == t ≥ 2` spawns exactly `t` workers for the pool's whole
///   lifetime — O(threads) spawns per run, asserted by the
///   spawn-accounting test via [`wave_worker_spawn_total`].
/// * A pool is stateless between waves: it can be reused across
///   batches, runs, phases, and even different [`NowSystem`]s, which is
///   how `now-sim` (run-scoped) and `now-campaign` (campaign-scoped)
///   hold one.
///
/// The pool is `Send` but deliberately not `Sync` (its completion
/// receiver is single-consumer): one driving thread at a time.
pub struct WavePool {
    threads: usize,
    workers: Vec<PoolWorker>,
    done_rx: mpsc::Receiver<std::thread::Result<()>>,
}

impl WavePool {
    /// Spawns the pool's workers: `normalize_threads(threads) - 1 + 1`
    /// OS threads when `threads ≥ 2`, none for single-worker pools.
    pub fn new(threads: usize) -> Self {
        let threads = normalize_threads(threads);
        let (done_tx, done_rx) = mpsc::channel();
        let mut workers = Vec::new();
        if threads > 1 {
            // The pool is the workspace's home for worker threads: every
            // other spawn is a D003 finding (lint.toml allows this file).
            for _ in 0..threads {
                let (job_tx, job_rx) = mpsc::channel::<WaveJob>();
                let done = done_tx.clone();
                let handle = std::thread::Builder::new()
                    .name("now-wave-worker".into())
                    .spawn(move || {
                        while let Ok(job) = job_rx.recv() {
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    run_wave_job(&job)
                                }));
                            // The driver counts completion signals; a
                            // dropped receiver means the pool is gone.
                            if done.send(result).is_err() {
                                break;
                            }
                        }
                    })
                    // INVARIANT: spawn fails only on OS thread-resource
                    // exhaustion at pool construction; there is nothing
                    // to degrade to, and failing at startup is the
                    // honest outcome.
                    .expect("spawn wave worker");
                WAVE_WORKER_SPAWNS.fetch_add(1, Ordering::Relaxed);
                workers.push(PoolWorker { job_tx, handle });
            }
        }
        WavePool {
            threads,
            workers,
            done_rx,
        }
    }

    /// The normalized thread budget this pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Worker threads actually spawned (`threads` for multi-worker
    /// pools, 0 for single-worker pools, which plan inline).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Plans one wave on the pool. Sequential inline planning when the
    /// wave (or the pool) is width 1; otherwise the wave is dispatched
    /// to `min(workers, ops)` workers and the call blocks until every
    /// dispatched worker has drained the cursor.
    fn plan_wave(
        &self,
        ctx: &WaveCtx<'_>,
        specs: &[OpSpec],
        master: u64,
        time_step: u64,
    ) -> Vec<OpPlan> {
        let n = specs.len();
        let participants = self.workers.len().min(n);
        if participants <= 1 {
            return plan_wave_sequential(ctx, specs, master, time_step);
        }
        let slots: Vec<Mutex<Option<OpPlan>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        // Lifetime-collapsing cast for transport; see `WaveJob`.
        let ctx_ptr = (ctx as *const WaveCtx<'_>).cast::<WaveCtx<'static>>();
        // INVARIANT: `participants = workers.len().min(n)`, so the
        // prefix slice is always in bounds.
        for worker in &self.workers[..participants] {
            let job = WaveJob {
                ctx: ctx_ptr,
                specs: specs.as_ptr(),
                slots: slots.as_ptr(),
                cursor: &cursor,
                len: n,
                master,
                time_step,
            };
            // INVARIANT: workers only exit their recv loop when the
            // pool (and thus this sender's peer) is being dropped, so
            // a live pool's job channel always has a receiver.
            worker.job_tx.send(job).expect("pool worker alive");
        }
        // Block until every dispatched worker has finished: this is the
        // synchronization the `WaveJob` safety contract relies on — the
        // wave's stack data (ctx borrow, specs, slots, cursor) stays
        // alive past the last worker access. Worker panics are carried
        // back over the channel and resumed on the driving thread after
        // the wave has fully quiesced.
        let mut worker_panic = None;
        for _ in 0..participants {
            // INVARIANT: every dispatched worker sends exactly one
            // completion signal (even on panic, via catch_unwind), and
            // workers outlive the pool that holds their senders.
            match self.done_rx.recv().expect("pool worker completes") {
                Ok(()) => {}
                Err(panic) => worker_panic = Some(panic),
            }
        }
        if let Some(panic) = worker_panic {
            std::panic::resume_unwind(panic);
        }
        collect_slots(slots)
    }
}

impl Drop for WavePool {
    fn drop(&mut self) {
        // Dropping a worker's sender ends its `recv` loop; joining then
        // cannot deadlock because no jobs are in flight (every
        // `plan_wave` drains its own completions before returning).
        for worker in self.workers.drain(..) {
            drop(worker.job_tx);
            let _ = worker.handle.join();
        }
    }
}

/// Which parallel planner a batched step runs its waves on.
pub(crate) enum PlanEngine<'p> {
    /// The persistent pool (one spawn per pool lifetime).
    Pooled(&'p WavePool),
    /// The legacy scoped executor (spawns per wave); retained as the
    /// determinism/spawn-overhead reference.
    Scoped(usize),
}

/// Order-preserving greedy wave partition over pre-batch footprints
/// (the same rule the serial scheduler applies incrementally). The
/// event engine feeds this the batch in *network delivery order*; the
/// other engines feed it the canonical order.
pub(crate) fn partition_waves(specs: &[OpSpec]) -> Vec<Range<usize>> {
    let mut waves = Vec::new();
    let mut start = 0usize;
    let mut union: BTreeSet<ClusterId> = BTreeSet::new();
    for (i, spec) in specs.iter().enumerate() {
        let conflicts = i > start && spec.footprint.iter().any(|c| union.contains(c));
        if conflicts {
            waves.push(start..i);
            start = i;
            union.clear();
        }
        union.extend(spec.footprint.iter().copied());
    }
    if start < specs.len() {
        waves.push(start..specs.len());
    }
    waves
}

/// The admitted half of a batch: up-front rejection decisions applied,
/// node ids assigned, canonical substream indices fixed. Every engine
/// (scheduled waves, event-driven) starts from this.
pub(crate) struct AdmittedBatch {
    /// Ids assigned to the batch's joiners, in input order.
    pub(crate) joined: Vec<NodeId>,
    /// Departures that passed validation, in input order.
    pub(crate) left: Vec<NodeId>,
    /// Departures refused with the reason.
    pub(crate) rejected: Vec<(NodeId, NowError)>,
    /// The admitted operations in canonical order.
    pub(crate) specs: Vec<OpSpec>,
    /// Steered contacts redrawn at admission.
    pub(crate) contact_redraws: u64,
}

impl NowSystem {
    /// Executes a batch of departures and arrivals as one time step,
    /// *actually running* each conflict-free wave's operations on up to
    /// `threads` worker threads (see the module docs for the execution
    /// model).
    ///
    /// The result is bit-identical at every `threads` value — admitted
    /// ids, population, ledger totals and per-kind statistics, and the
    /// wave schedule all match a `threads = 1` run of the same seed;
    /// only [`BatchReport::wall_nanos`] varies. `threads = 0` is
    /// treated as 1.
    #[deprecated(note = "use `NowSystem::step_batch` with `ExecConfig::threaded`")]
    pub fn step_parallel_threaded(
        &mut self,
        join_honesty: &[bool],
        leaves: &[NodeId],
        threads: usize,
    ) -> BatchReport {
        self.step_batch(
            &crate::exec::BatchInput::from_flags(join_honesty, leaves),
            &crate::exec::ExecConfig::threaded(threads),
        )
    }

    /// [`NowSystem::step_parallel_threaded`] with per-arrival contact
    /// steering (see [`crate::batch::JoinSpec`]).
    #[deprecated(note = "use `NowSystem::step_batch` with `ExecConfig::threaded`")]
    pub fn step_parallel_threaded_specs(
        &mut self,
        joins: &[crate::batch::JoinSpec],
        leaves: &[NodeId],
        threads: usize,
    ) -> BatchReport {
        self.step_batch(
            &crate::exec::BatchInput::from_specs(joins, leaves),
            &crate::exec::ExecConfig::threaded(threads),
        )
    }

    /// [`NowSystem::step_parallel_threaded`] on a caller-held
    /// [`WavePool`].
    #[deprecated(note = "use `NowSystem::step_batch` with `ExecConfig::pooled`")]
    pub fn step_parallel_pooled(
        &mut self,
        join_honesty: &[bool],
        leaves: &[NodeId],
        pool: &WavePool,
    ) -> BatchReport {
        self.step_batch(
            &crate::exec::BatchInput::from_flags(join_honesty, leaves),
            &crate::exec::ExecConfig::pooled(pool),
        )
    }

    /// [`NowSystem::step_parallel_pooled`] with per-arrival contact
    /// steering.
    #[deprecated(note = "use `NowSystem::step_batch` with `ExecConfig::pooled`")]
    pub fn step_parallel_pooled_specs(
        &mut self,
        joins: &[crate::batch::JoinSpec],
        leaves: &[NodeId],
        pool: &WavePool,
    ) -> BatchReport {
        self.step_batch(
            &crate::exec::BatchInput::from_specs(joins, leaves),
            &crate::exec::ExecConfig::pooled(pool),
        )
    }

    /// The legacy scoped executor: bit-identical to the pooled engine
    /// but spawns fresh scoped workers for every wave of width ≥ 2.
    #[deprecated(note = "use `NowSystem::step_batch` with `ExecConfig::scoped`")]
    pub fn step_parallel_scoped_specs(
        &mut self,
        joins: &[crate::batch::JoinSpec],
        leaves: &[NodeId],
        threads: usize,
    ) -> BatchReport {
        self.step_batch(
            &crate::exec::BatchInput::from_specs(joins, leaves),
            &crate::exec::ExecConfig::scoped(threads),
        )
    }

    /// Validates a batch up front and fixes the canonical order:
    /// departures before arrivals, each in input order, with the
    /// per-operation substream index ([`OpSpec::canon`]) equal to the
    /// operation's canonical position. Shared by the wave engines and
    /// the event engine, so admission semantics cannot drift between
    /// them.
    pub(crate) fn admit_batch(
        &mut self,
        joins: &[crate::batch::JoinSpec],
        leaves: &[NodeId],
    ) -> AdmittedBatch {
        let step = self.time_step;
        let mut joined = Vec::with_capacity(joins.len());
        let mut left = Vec::new();
        let mut rejected = Vec::new();
        let mut specs: Vec<OpSpec> = Vec::new();
        let floor = self.params.min_population();
        let mut projected = self.population();
        let mut claimed: BTreeSet<NodeId> = BTreeSet::new();
        for &node in leaves {
            if projected <= floor {
                self.hub
                    .event(step, TraceData::OpRejected { node: node.raw() });
                rejected.push((
                    node,
                    NowError::PopulationFloor {
                        population: projected,
                        floor,
                    },
                ));
                continue;
            }
            if claimed.contains(&node) {
                self.hub
                    .event(step, TraceData::OpRejected { node: node.raw() });
                rejected.push((node, NowError::UnknownNode { node }));
                continue;
            }
            match self.node_cluster(node) {
                Ok(home) => {
                    claimed.insert(node);
                    projected -= 1;
                    left.push(node);
                    let canon = specs.len() as u64;
                    self.hub.event(
                        step,
                        TraceData::OpPlanned {
                            canon,
                            join: false,
                            node: node.raw(),
                        },
                    );
                    specs.push(OpSpec {
                        op: PlannedOp::Leave { node },
                        footprint: self.op_footprint(home),
                        canon,
                        center: home,
                        contact_redrawn: false,
                    });
                }
                Err(e) => {
                    self.hub
                        .event(step, TraceData::OpRejected { node: node.raw() });
                    rejected.push((node, e));
                }
            }
        }
        // Redraws are counted when the op's wave executes (via the
        // spec flag), so admission itself reports zero.
        let contact_redraws = 0u64;
        for &spec in joins {
            // Admission-time resolution against the pre-batch state;
            // contacts dissolved later, by an earlier *wave* of this
            // batch, get the plan-time redraw in `plan_op`. Either way
            // the op counts as at most one redraw (see `OpSpec`).
            let (contact, redrawn) = self.resolve_batch_contact(spec);
            let node = self.ids.node();
            joined.push(node);
            let canon = specs.len() as u64;
            self.hub.event(
                step,
                TraceData::OpPlanned {
                    canon,
                    join: true,
                    node: node.raw(),
                },
            );
            specs.push(OpSpec {
                op: PlannedOp::Join {
                    node,
                    honest: spec.honest,
                    contact,
                },
                footprint: self.op_footprint(contact),
                canon,
                center: contact,
                contact_redrawn: redrawn,
            });
        }
        AdmittedBatch {
            joined,
            left,
            rejected,
            specs,
            contact_redraws,
        }
    }

    pub(crate) fn step_waves_impl(
        &mut self,
        joins: &[crate::batch::JoinSpec],
        leaves: &[NodeId],
        engine: PlanEngine<'_>,
    ) -> BatchReport {
        // Wall-clock measurement only: feeds `wall_nanos`, which is
        // excluded from byte-diffed reports.
        let start = now_trace::stopwatch();
        self.ledger.begin(CostKind::Batch);

        let AdmittedBatch {
            joined,
            left,
            rejected,
            specs,
            mut contact_redraws,
        } = self.admit_batch(joins, leaves);

        let waves = partition_waves(&specs);
        let master = self.rng.next_u64();

        let mut wave_stats: Vec<WaveStats> = Vec::with_capacity(waves.len());
        for wave in waves {
            let stats = self.execute_wave(&specs[wave], &engine, master, &mut contact_redraws);
            wave_stats.push(stats);
        }

        if contact_redraws > 0 {
            self.hub.event(
                self.time_step,
                TraceData::ContactRedraws {
                    count: contact_redraws,
                },
            );
        }
        let rounds_parallel = wave_stats.iter().map(|w| w.rounds_max).sum();
        let cost = self.ledger.end();
        self.advance_time_step();
        BatchReport {
            joined,
            left,
            rejected,
            cost,
            rounds_parallel,
            waves: wave_stats,
            contact_redraws,
            dropped: 0,
            events: Vec::new(),
            wall_nanos: start.elapsed_nanos(),
        }
    }

    /// Plans and applies one conflict-free wave: plan on the engine's
    /// workers (sequentially for a strategic Malice), apply effects
    /// canonically through the wave shards, fold ledgers, then run the
    /// deferred size maintenance. Shared by the wave engines (canonical
    /// order) and the event engine (delivery order).
    pub(crate) fn execute_wave(
        &mut self,
        wave_specs: &[OpSpec],
        engine: &PlanEngine<'_>,
        master: u64,
        contact_redraws: &mut u64,
    ) -> WaveStats {
        let time_step = self.time_step;
        let neutral = self.malice.is_neutral();
        let recording = self.ledger.is_recording();

        {
            // ---- plan (workers; sequential for a strategic Malice) ----
            let ctx = WaveCtx {
                registry: &self.registry,
                overlay: &self.overlay,
                params: self.params,
                recording,
            };
            let plan_start = now_trace::stopwatch();
            let plans: Vec<OpPlan> = if neutral {
                match *engine {
                    PlanEngine::Pooled(pool) => pool.plan_wave(&ctx, wave_specs, master, time_step),
                    PlanEngine::Scoped(threads) => {
                        plan_wave_scoped(&ctx, wave_specs, master, time_step, threads)
                    }
                }
            } else {
                wave_specs
                    .iter()
                    .map(|spec| {
                        let rng = DetRng::for_op(master, time_step, spec.canon);
                        plan_op(&ctx, spec, rng, Some(&mut *self.malice))
                    })
                    .collect()
            };
            plan_start.record_into(&WAVE_PLAN_NANOS);

            // ---- wave stats from the planned costs ----
            let mut stats = WaveStats::default();
            for (spec, plan) in wave_specs.iter().zip(&plans) {
                stats.ops += 1;
                stats.rounds_max = stats.rounds_max.max(plan.cost.rounds);
                stats.rounds_total += plan.cost.rounds;
                stats.messages += plan.cost.messages;
                if spec.contact_redrawn || plan.contact_redrawn {
                    *contact_redraws += 1;
                }
            }
            self.hub.event(
                time_step,
                TraceData::Wave {
                    ops: stats.ops as u64,
                    rounds: stats.rounds_max,
                    messages: stats.messages,
                },
            );

            // ---- apply effects canonically through the wave shards ----
            // `touched` collects every cluster whose membership actually
            // changed: canonical conflict resolution (two ops drawing
            // the same exchange victim, relocations voided by an
            // earlier departure) can net-change the size of clusters
            // that are *nobody's* host or home, and those must still be
            // maintenance-checked below.
            let mut touched: BTreeSet<ClusterId> = BTreeSet::new();
            {
                let shards = self.registry.wave_shards();
                for (spec, plan) in wave_specs.iter().zip(&plans) {
                    let mut handle = shards.handle(&spec.footprint);
                    for effect in &plan.effects {
                        match *effect {
                            Effect::Detach { node } => match shards.node_record(node) {
                                Some(rec) if handle.covers(rec.cluster) => {
                                    handle.detach(node);
                                    touched.insert(rec.cluster);
                                }
                                Some(rec) => {
                                    shards.detach_any(node);
                                    touched.insert(rec.cluster);
                                }
                                None => {}
                            },
                            Effect::Attach {
                                node,
                                honest,
                                cluster,
                            } => {
                                if handle.covers(cluster) {
                                    handle.attach(node, honest, cluster);
                                } else {
                                    shards.attach_any(node, honest, cluster);
                                }
                                touched.insert(cluster);
                            }
                            Effect::Move { node, to } => match shards.node_record(node) {
                                Some(rec) if handle.covers(rec.cluster) && handle.covers(to) => {
                                    handle.move_within(node, to);
                                    touched.insert(rec.cluster);
                                    touched.insert(to);
                                }
                                Some(rec) => {
                                    shards.move_any(node, to);
                                    touched.insert(rec.cluster);
                                    touched.insert(to);
                                }
                                // The node departed earlier in this
                                // wave: the relocation is void.
                                None => {}
                            },
                        }
                    }
                }
                let (pop_delta, byz_delta) = shards.deltas();
                // INVARIANT: the deltas are sums over this wave's own
                // attach/detach calls against live records, so they can
                // never drive a counter below the pre-wave value.
                self.registry
                    .apply_wave_deltas(pop_delta, byz_delta)
                    .expect("wave deltas balance");
            }

            // ---- fold ledgers + op counters canonically ----
            for (spec, plan) in wave_specs.iter().zip(&plans) {
                let (join, node) = match spec.op {
                    PlannedOp::Join { node, .. } => {
                        self.join_count += 1;
                        (true, node)
                    }
                    PlannedOp::Leave { node } => {
                        self.leave_count += 1;
                        (false, node)
                    }
                };
                self.hub.event(
                    time_step,
                    TraceData::OpApplied {
                        canon: spec.canon,
                        join,
                        node: node.raw(),
                    },
                );
                self.ledger.merge_child(&plan.ledger);
            }

            // ---- deferred maintenance ----
            // First each op's own host/home in canonical order (the
            // direct analogue of the serial oversize/undersize checks),
            // then a sweep over every other touched cluster in
            // ascending id order — a deterministic net to catch
            // size-band escapes that conflict resolution produced on
            // third-party clusters.
            for plan in &plans {
                match plan.maintenance {
                    Maintenance::Split(c) => {
                        touched.remove(&c);
                        if self.registry.contains_cluster(c)
                            && self.cluster_ref(c).size() > self.params.max_cluster_size()
                        {
                            self.split(c);
                        }
                    }
                    Maintenance::Merge(c) => {
                        touched.remove(&c);
                        if self.registry.contains_cluster(c)
                            && self.cluster_ref(c).size() < self.params.min_cluster_size()
                            && self.cluster_count() > 1
                        {
                            self.merge(c);
                        }
                    }
                }
            }
            for c in touched {
                if !self.registry.contains_cluster(c) {
                    continue;
                }
                if self.cluster_ref(c).size() > self.params.max_cluster_size() {
                    self.split(c);
                } else if self.cluster_ref(c).size() < self.params.min_cluster_size()
                    && self.cluster_count() > 1
                {
                    self.merge(c);
                }
            }

            stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{BatchInput, ExecConfig};
    use crate::params::NowParams;
    use now_net::CostKind;

    fn system(n0: usize, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, 0.2, seed)
    }

    /// Sparse overlay (capacity 16 ⇒ target degree 5) over 64 clusters:
    /// wide waves exist.
    fn sparse_system(seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(16).unwrap();
        let n0 = 64 * params.target_cluster_size();
        NowSystem::init_fast(params, n0, 0.1, seed)
    }

    /// Full observable fingerprint of a run: everything the
    /// bit-determinism contract covers.
    fn fingerprint(sys: &NowSystem, report: &BatchReport) -> impl PartialEq + std::fmt::Debug {
        (
            (
                sys.population(),
                sys.byz_population(),
                sys.node_ids(),
                sys.cluster_ids(),
                sys.op_counts(),
            ),
            (
                report.joined.clone(),
                report.left.clone(),
                report
                    .rejected
                    .iter()
                    .map(|(n, e)| (*n, format!("{e:?}")))
                    .collect::<Vec<_>>(),
            ),
            (
                report.cost,
                report.rounds_parallel,
                report.waves.clone(),
                report.contact_redraws,
            ),
            (
                sys.ledger().total(),
                CostKind::ALL
                    .iter()
                    .map(|&k| sys.ledger().stats(k))
                    .collect::<Vec<_>>(),
            ),
        )
    }

    fn run_threaded(
        seed: u64,
        joins: &[bool],
        n_leaves: usize,
        threads: usize,
    ) -> (NowSystem, BatchReport) {
        let mut sys = sparse_system(seed);
        let leaves: Vec<NodeId> = sys
            .node_ids()
            .into_iter()
            .step_by(17)
            .take(n_leaves)
            .collect();
        let report = sys.step_batch(
            &BatchInput::from_flags(joins, &leaves),
            &ExecConfig::threaded(threads),
        );
        (sys, report)
    }

    #[test]
    fn thread_count_is_unobservable() {
        let joins = [true, false, true, true, false, true];
        for threads in [2usize, 4, 8] {
            let (s1, r1) = run_threaded(11, &joins, 6, 1);
            let (st, rt) = run_threaded(11, &joins, 6, threads);
            assert_eq!(
                fingerprint(&s1, &r1),
                fingerprint(&st, &rt),
                "threads=1 vs threads={threads} diverged"
            );
            st.check_consistency().unwrap();
        }
    }

    #[test]
    fn zero_threads_is_one_thread() {
        let (s0, r0) = run_threaded(3, &[true, false], 2, 0);
        let (s1, r1) = run_threaded(3, &[true, false], 2, 1);
        assert_eq!(fingerprint(&s0, &r0), fingerprint(&s1, &r1));
    }

    #[test]
    fn threads_knob_normalizes_identically_everywhere() {
        // The one shared rule: 0 means 1. Pinned here for the helper
        // itself and for each now-core entry point that takes the knob;
        // now-sim and now-campaign have their own regression tests
        // built on the same helper.
        assert_eq!(normalize_threads(0), 1);
        assert_eq!(normalize_threads(1), 1);
        assert_eq!(normalize_threads(7), 7);
        let pool = WavePool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.worker_count(), 0, "single-worker pools plan inline");
        let joins = [true, false];
        let scoped = |threads: usize| {
            let mut sys = sparse_system(3);
            let leaves: Vec<NodeId> = sys.node_ids().into_iter().step_by(17).take(2).collect();
            let specs: Vec<crate::batch::JoinSpec> = joins
                .iter()
                .map(|&h| crate::batch::JoinSpec::uniform(h))
                .collect();
            let report = sys.step_batch(
                &BatchInput::from_specs(&specs, &leaves),
                &ExecConfig::scoped(threads),
            );
            (fingerprint(&sys, &report), sys)
        };
        let (f0, _) = scoped(0);
        let (f1, _) = scoped(1);
        assert_eq!(f0, f1, "scoped executor: threads=0 must equal threads=1");
    }

    /// The tentpole contract: the pooled engine, the legacy scoped
    /// engine, and sequential planning are bit-identical on the full
    /// observable fingerprint, for multi-wave batches at several thread
    /// counts.
    #[test]
    fn pooled_equals_scoped_equals_sequential() {
        let joins = [true, false, true, true, false, true, true, false];
        let build = || {
            let sys = sparse_system(21);
            let leaves: Vec<NodeId> = sys.node_ids().into_iter().step_by(11).take(8).collect();
            (sys, leaves)
        };
        let specs: Vec<crate::batch::JoinSpec> = joins
            .iter()
            .map(|&h| crate::batch::JoinSpec::uniform(h))
            .collect();
        let (mut seq_sys, leaves) = build();
        let seq_report = seq_sys.step_batch(
            &BatchInput::from_specs(&specs, &leaves),
            &ExecConfig::threaded(1),
        );
        assert!(
            seq_report.waves.len() >= 2,
            "want a multi-wave batch: {:?}",
            seq_report.waves
        );
        for threads in [2usize, 4, 8] {
            let (mut pooled_sys, leaves) = build();
            let pool = WavePool::new(threads);
            let pooled_report = pooled_sys.step_batch(
                &BatchInput::from_specs(&specs, &leaves),
                &ExecConfig::pooled(&pool),
            );
            let (mut scoped_sys, leaves) = build();
            let scoped_report = scoped_sys.step_batch(
                &BatchInput::from_specs(&specs, &leaves),
                &ExecConfig::scoped(threads),
            );
            assert_eq!(
                fingerprint(&seq_sys, &seq_report),
                fingerprint(&pooled_sys, &pooled_report),
                "sequential vs pooled({threads}) diverged"
            );
            assert_eq!(
                fingerprint(&seq_sys, &seq_report),
                fingerprint(&scoped_sys, &scoped_report),
                "sequential vs scoped({threads}) diverged"
            );
            pooled_sys.check_consistency().unwrap();
        }
    }

    /// A run-scoped pool reused across many batches (and across
    /// systems) produces exactly what per-batch pools produce: the pool
    /// carries no state between waves.
    #[test]
    fn pool_reuse_across_batches_is_stateless() {
        let run = |reuse: bool| {
            let mut sys = sparse_system(17);
            let mut out = Vec::new();
            let shared = WavePool::new(4);
            for step in 0..6u64 {
                let leaves: Vec<NodeId> = sys
                    .node_ids()
                    .into_iter()
                    .step_by(13)
                    .take(3 + (step as usize % 3))
                    .collect();
                let joins = [step % 2 == 0, true, false];
                let report = if reuse {
                    sys.step_batch(
                        &BatchInput::from_flags(&joins, &leaves),
                        &ExecConfig::pooled(&shared),
                    )
                } else {
                    let fresh = WavePool::new(4);
                    sys.step_batch(
                        &BatchInput::from_flags(&joins, &leaves),
                        &ExecConfig::pooled(&fresh),
                    )
                };
                out.push((
                    report.joined,
                    report.left,
                    report.cost,
                    report.waves,
                    report.rounds_parallel,
                ));
            }
            sys.check_consistency().unwrap();
            (out, sys.population(), sys.node_ids(), sys.ledger().total())
        };
        assert_eq!(run(true), run(false), "pool reuse changed outcomes");
    }

    /// Steered contacts that are already dead at batch admission
    /// degrade to the uniform redraw — same rule, and same count
    /// surfaced, in the scheduled and threaded engines.
    #[test]
    fn stale_contact_at_admission_redraws_in_both_engines() {
        let ghost = ClusterId::from_raw(999_999);
        let joins = [
            crate::batch::JoinSpec::via(ghost, true),
            crate::batch::JoinSpec::uniform(true),
        ];
        let mut scheduled = system(150, 31);
        assert!(scheduled.cluster(ghost).is_none());
        let r = scheduled.step_batch(&BatchInput::from_specs(&joins, &[]), &ExecConfig::serial());
        assert_eq!(r.contact_redraws, 1, "scheduled engine counts the redraw");
        assert_eq!(r.joined.len(), 2);
        scheduled.check_consistency().unwrap();

        let mut threaded = system(150, 31);
        let r = threaded.step_batch(
            &BatchInput::from_specs(&joins, &[]),
            &ExecConfig::threaded(4),
        );
        assert_eq!(r.contact_redraws, 1, "threaded engine counts the redraw");
        assert_eq!(r.joined.len(), 2);
        threaded.check_consistency().unwrap();
    }

    /// Regression for the plan-time redraw (`plan_join` fallback): a
    /// batch in which an earlier wave's merge dissolves a later join's
    /// steered contact must redraw uniformly from the op's substream —
    /// deterministically across thread counts — rather than panic or
    /// silently attach to a dead cluster.
    #[test]
    fn merge_dissolving_steered_contact_mid_batch_redraws() {
        // Dense capacity-2¹⁰ overlay: every footprint spans the whole
        // cluster set, so the steered join serializes into its own wave
        // *after* all departures — by which point the undersize merge
        // has already run. Shuffle is disabled so the targeted members
        // stay in their home cluster (exchanges would relocate them and
        // defuse the merge).
        let build = |seed: u64| {
            let params = NowParams::for_capacity(1 << 10)
                .unwrap()
                .with_shuffle(false);
            NowSystem::init_fast(params, 200, 0.2, seed)
        };
        let mut exercised = false;
        for seed in 0..20u64 {
            let sys = build(seed);
            let min = sys.params().min_cluster_size();
            let smallest = sys
                .clusters()
                .min_by_key(|c| (c.size(), c.id()))
                .expect("live system");
            let need = smallest.size() - min + 1;
            let leaves: Vec<NodeId> = smallest.member_slice().iter().copied().take(need).collect();
            let ids_before = sys.cluster_ids();

            // Probe: which cluster does the batch's merge dissolve?
            let mut probe = build(seed);
            probe.step_batch(
                &BatchInput::from_flags(&[], &leaves),
                &ExecConfig::threaded(1),
            );
            let dissolved: Vec<ClusterId> = ids_before
                .iter()
                .copied()
                .filter(|&c| probe.cluster(c).is_none())
                .collect();

            for &victim in &dissolved {
                let joins = [crate::batch::JoinSpec::via(victim, true)];
                let mut s1 = build(seed);
                let r1 = s1.step_batch(
                    &BatchInput::from_specs(&joins, &leaves),
                    &ExecConfig::threaded(1),
                );
                if r1.contact_redraws == 0 {
                    continue;
                }
                exercised = true;
                assert_eq!(r1.joined.len(), 1, "redrawn join still admitted");
                assert!(
                    s1.cluster(victim).is_none(),
                    "contact was dissolved mid-batch"
                );
                s1.check_consistency().unwrap();
                let mut s4 = build(seed);
                let r4 = s4.step_batch(
                    &BatchInput::from_specs(&joins, &leaves),
                    &ExecConfig::threaded(4),
                );
                assert_eq!(
                    fingerprint(&s1, &r1),
                    fingerprint(&s4, &r4),
                    "plan-time redraw diverged across thread counts (seed {seed})"
                );
            }
            if exercised {
                break;
            }
        }
        assert!(
            exercised,
            "no probed seed dissolved a later op's steered contact — construction rotted"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let (s1, r1) = run_threaded(5, &[true, true], 3, 4);
        let (s2, r2) = run_threaded(6, &[true, true], 3, 4);
        assert_ne!(
            format!("{:?}", fingerprint(&s1, &r1)),
            format!("{:?}", fingerprint(&s2, &r2))
        );
    }

    #[test]
    fn wide_disjoint_batches_schedule_wide_waves() {
        let (sys, report) = run_threaded(9, &[true; 8], 8, 4);
        assert_eq!(report.joined.len(), 8);
        assert_eq!(report.left.len(), 8);
        assert!(
            report.max_wave_width() >= 2,
            "sparse overlay should admit concurrent ops: {:?}",
            report.waves
        );
        assert!(report.rounds_parallel < report.cost.rounds);
        // Deferred split/merge maintenance is accounted in the batch
        // span but outside the wave ops, so the wave serial sums bound
        // the batch rounds from below.
        assert!(
            report.waves.iter().map(|w| w.rounds_total).sum::<u64>() <= report.cost.rounds,
            "wave serial sums cannot exceed the batch rounds"
        );
        sys.check_consistency().unwrap();
    }

    #[test]
    fn rejection_rules_match_serial_semantics() {
        let params = NowParams::for_capacity(1 << 10).unwrap(); // floor 32
        let mut sys = NowSystem::init_fast(params, 33, 0.0, 4);
        let nodes = sys.node_ids();
        // One fits above the floor, the duplicate and the rest reject.
        let leaves = [nodes[0], nodes[0], nodes[1]];
        let report = sys.step_batch(
            &BatchInput::from_flags(&[], &leaves),
            &ExecConfig::threaded(4),
        );
        assert_eq!(report.left, vec![nodes[0]]);
        assert_eq!(report.rejected.len(), 2);
        assert!(matches!(
            report.rejected[0].1,
            NowError::PopulationFloor { .. } | NowError::UnknownNode { .. }
        ));
        assert_eq!(
            report.waves.iter().map(|w| w.ops).sum::<usize>(),
            1,
            "rejected ops occupy no wave slot"
        );
        sys.check_consistency().unwrap();
    }

    #[test]
    fn sustained_threaded_batches_keep_invariants() {
        let mut sys = system(220, 7);
        let (lo, hi) = (
            sys.params().min_cluster_size(),
            sys.params().max_cluster_size(),
        );
        for round in 0..25u64 {
            let leavers: Vec<NodeId> = sys.node_ids().into_iter().take(2).collect();
            let joins = [round % 3 != 0, true];
            let report = sys.step_batch(
                &BatchInput::from_flags(&joins, &leavers),
                &ExecConfig::threaded(4),
            );
            assert_eq!(report.joined.len(), 2);
            sys.check_consistency().unwrap();
            // The size band must hold after *every* batch — including
            // on clusters that were only touched by conflict
            // resolution, not by any op's own host/home maintenance.
            for c in sys.clusters() {
                assert!(c.size() <= hi, "cluster {} over band: {}", c.id(), c.size());
                if sys.cluster_count() > 1 {
                    assert!(
                        c.size() >= lo,
                        "cluster {} under band: {}",
                        c.id(),
                        c.size()
                    );
                }
            }
        }
        let audit = sys.audit();
        assert!(audit.size_bounds_ok);
        let (joins, leaves, _, _) = sys.op_counts();
        assert!(joins >= 50 && leaves >= 50);
    }

    /// Tripwire for kernel/serial drift: the planner mirrors the serial
    /// join/leave/exchange/walk implementations, so a single-op batch
    /// and a serial op are the *same cost model* driven by different
    /// streams. The span-kind sets must agree exactly and the ensemble
    /// mean per-op message cost must stay within a tight band — a
    /// change to the serial semantics (new ledger span, changed walk
    /// formula, cascade rule) that is not mirrored here trips this
    /// before it silently forks the two engines.
    #[test]
    fn mirror_tracks_serial_cost_model() {
        use std::collections::BTreeSet;
        let span_kinds = |sys: &NowSystem| -> BTreeSet<CostKind> {
            CostKind::ALL
                .iter()
                .copied()
                .filter(|&k| k != CostKind::Batch && sys.ledger().stats(k).count > 0)
                .collect()
        };
        // Sized so no split/merge triggers: serial nests maintenance
        // inside the op span while the engine accounts it as a sibling,
        // which would skew the comparison.
        let mut serial_join = 0u64;
        let mut mirror_join = 0u64;
        let mut serial_leave = 0u64;
        let mut mirror_leave = 0u64;
        for seed in 0..12u64 {
            let mut a = system(160, seed);
            a.join(true);
            let victim = a.node_ids()[0];
            a.leave(victim).unwrap();
            serial_join += a.ledger().stats(CostKind::Join).total_messages;
            serial_leave += a.ledger().stats(CostKind::Leave).total_messages;

            let mut b = system(160, seed);
            b.step_batch(
                &BatchInput::from_flags(&[true], &[]),
                &ExecConfig::threaded(1),
            );
            let victim = b.node_ids()[0];
            b.step_batch(
                &BatchInput::from_flags(&[], &[victim]),
                &ExecConfig::threaded(1),
            );
            mirror_join += b.ledger().stats(CostKind::Join).total_messages;
            mirror_leave += b.ledger().stats(CostKind::Leave).total_messages;

            assert_eq!(
                span_kinds(&a),
                span_kinds(&b),
                "span-kind sets diverged (seed {seed})"
            );
        }
        for (serial, mirror, what) in [
            (serial_join, mirror_join, "join"),
            (serial_leave, mirror_leave, "leave"),
        ] {
            let ratio = mirror as f64 / serial as f64;
            assert!(
                (0.75..=1.33).contains(&ratio),
                "{what} mean cost drifted: serial {serial}, mirror {mirror} (×{ratio:.3})"
            );
        }
    }

    #[test]
    fn maintenance_still_triggers_under_threading() {
        // Dense capacity-2¹⁰ system: sustained shrinkage must merge,
        // sustained growth must split — through the deferred path.
        let mut sys = system(220, 8);
        for _ in 0..30 {
            let leavers: Vec<NodeId> = sys.node_ids().into_iter().take(3).collect();
            sys.step_batch(
                &BatchInput::from_flags(&[], &leavers),
                &ExecConfig::threaded(4),
            );
            sys.check_consistency().unwrap();
        }
        let (_, _, _, merges) = sys.op_counts();
        assert!(merges > 0, "shrinkage must merge through the wave engine");

        let mut grow = system(100, 9);
        for _ in 0..30 {
            grow.step_batch(
                &BatchInput::from_flags(&[true, true, true, true], &[]),
                &ExecConfig::threaded(4),
            );
            grow.check_consistency().unwrap();
        }
        let (_, _, splits, _) = grow.op_counts();
        assert!(splits > 0, "growth must split through the wave engine");
    }

    #[test]
    fn batch_lands_under_batch_cost_kind_with_nested_ops() {
        let mut sys = system(150, 10);
        let report = sys.step_batch(
            &BatchInput::from_flags(&[true, false], &[]),
            &ExecConfig::threaded(2),
        );
        assert_eq!(report.joined.len(), 2);
        let batch = sys.ledger().stats(CostKind::Batch);
        assert_eq!(batch.count, 1);
        assert_eq!(batch.total_messages, report.cost.messages);
        assert_eq!(sys.ledger().stats(CostKind::Join).count, 2);
        assert!(sys.ledger().stats(CostKind::RandCl).count > 0);
        assert!(sys.ledger().is_balanced());
    }

    #[test]
    fn empty_batch_advances_time_only() {
        let mut sys = system(100, 11);
        let t0 = sys.time_step();
        let total = sys.ledger().total();
        let report = sys.step_batch(&BatchInput::from_flags(&[], &[]), &ExecConfig::threaded(8));
        assert_eq!(sys.time_step(), t0 + 1);
        assert_eq!(report.cost, Cost::ZERO);
        assert_eq!(sys.ledger().total(), total);
        assert_eq!(report.wave_count(), 0);
    }

    #[test]
    fn recording_ledger_survives_threaded_merge() {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        let mut sys = NowSystem::init_fast(params, 150, 0.1, 12);
        *sys.ledger_mut() = Ledger::recording();
        let go = |threads: usize| {
            let mut s = NowSystem::init_fast(params, 150, 0.1, 12);
            *s.ledger_mut() = Ledger::recording();
            s.step_batch(
                &BatchInput::from_flags(&[true, true, false], &[]),
                &ExecConfig::threaded(threads),
            );
            s.ledger().records().to_vec()
        };
        let serial = go(1);
        let threaded = go(4);
        assert!(!serial.is_empty());
        assert_eq!(serial, threaded, "record streams must be bit-identical");
        sys.check_consistency().unwrap();
    }
}
