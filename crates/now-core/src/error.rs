//! Error types for the NOW protocol crate.

use now_net::{ClusterId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors surfaced by [`crate::NowSystem`] operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NowError {
    /// Parameter validation failed.
    BadParams {
        /// Human-readable reason.
        reason: String,
    },
    /// The node is not currently part of the network.
    UnknownNode {
        /// The offending id.
        node: NodeId,
    },
    /// The cluster id does not name a live cluster.
    UnknownCluster {
        /// The offending id.
        cluster: ClusterId,
    },
    /// The operation would leave the system without any cluster.
    LastCluster,
    /// The population floor (`N^{1/y}`, default `√N`) would be violated
    /// by this leave.
    PopulationFloor {
        /// Current population.
        population: u64,
        /// The floor.
        floor: u64,
    },
    /// The population ceiling (`N^z`, default `N`) would be violated by
    /// this join.
    PopulationCeiling {
        /// Current population.
        population: u64,
        /// The ceiling.
        ceiling: u64,
    },
    /// A campaign file failed to parse (see `now-campaign`): the line
    /// number is 1-based and the reason names the malformed directive.
    CampaignParse {
        /// 1-based line number of the offending directive.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A campaign run or report emission failed outside parsing (e.g.
    /// an empty phase list, or an I/O failure writing the JSON report).
    CampaignReport {
        /// Human-readable reason.
        reason: String,
    },
    /// An internal bookkeeping invariant was violated — continuing
    /// would silently corrupt aggregate state (e.g. a wave's
    /// population delta driving a counter negative). This is always a
    /// bug in the caller's op sequence, never a recoverable condition.
    StateCorrupt {
        /// Which invariant broke, and how.
        reason: String,
    },
}

impl fmt::Display for NowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NowError::BadParams { reason } => write!(f, "invalid NOW parameters: {reason}"),
            NowError::UnknownNode { node } => write!(f, "unknown node {node}"),
            NowError::UnknownCluster { cluster } => write!(f, "unknown cluster {cluster}"),
            NowError::LastCluster => write!(f, "operation would remove the last cluster"),
            NowError::PopulationFloor { population, floor } => write!(
                f,
                "population {population} at the model floor {floor}; leave refused"
            ),
            NowError::PopulationCeiling {
                population,
                ceiling,
            } => write!(
                f,
                "population {population} at the model ceiling {ceiling}; join refused"
            ),
            NowError::CampaignParse { line, reason } => {
                write!(f, "campaign parse error at line {line}: {reason}")
            }
            NowError::CampaignReport { reason } => {
                write!(f, "campaign report error: {reason}")
            }
            NowError::StateCorrupt { reason } => {
                write!(f, "internal state corruption: {reason}")
            }
        }
    }
}

impl Error for NowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NowError::UnknownNode {
            node: NodeId::from_raw(3),
        };
        assert_eq!(e.to_string(), "unknown node n3");
        let e = NowError::PopulationFloor {
            population: 16,
            floor: 16,
        };
        assert!(e.to_string().contains("floor"));
        let e = NowError::CampaignParse {
            line: 7,
            reason: "unknown directive `frobnicate`".into(),
        };
        assert_eq!(
            e.to_string(),
            "campaign parse error at line 7: unknown directive `frobnicate`"
        );
        let e = NowError::CampaignReport {
            reason: "campaign has no phases".into(),
        };
        assert!(e.to_string().contains("no phases"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<NowError>();
    }
}
