//! Per-node local views and their coherence audit.
//!
//! §3.1 of the paper: *"A node of a cluster C is linked to all the other
//! nodes of C and knows their identities. An edge between two clusters
//! Cᵢ and Cⱼ in Ĝᴿ means that all nodes of Cᵢ are linked to all nodes of
//! Cⱼ and know their identities (and vice-versa). A node only needs to
//! know the identities of the nodes in its cluster and the neighboring
//! ones."*
//!
//! The L1 execution path maintains cluster state centrally; this module
//! *derives* what every node's local view must contain and audits the
//! view discipline the quorum rule depends on:
//!
//! * **completeness** — a node knows every member of its own cluster and
//!   of each overlay-adjacent cluster;
//! * **parsimony** — and nothing else (the paper has nodes forget all
//!   other identities "for efficiency purposes");
//! * **symmetry** — if `u` knows `v`, then `v` knows `u` (links are
//!   bidirectional private channels);
//! * **quorum sufficiency** — for every overlay edge `(C, D)`, each node
//!   of `D` knows *all* of `C` (otherwise it could not count "more than
//!   half of C" and the quorum rule would be unsound).

use crate::system::NowSystem;
use now_net::{ClusterId, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// The derived local view of one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeView {
    /// The node whose view this is.
    pub node: NodeId,
    /// Its cluster.
    pub cluster: ClusterId,
    /// Members of its own cluster (including itself).
    pub own_members: BTreeSet<NodeId>,
    /// For each adjacent cluster: its full membership.
    pub neighbor_members: BTreeMap<ClusterId, BTreeSet<NodeId>>,
}

impl NodeView {
    /// Every identity this node is entitled to know.
    pub fn known_ids(&self) -> BTreeSet<NodeId> {
        let mut all = self.own_members.clone();
        for members in self.neighbor_members.values() {
            all.extend(members.iter().copied());
        }
        all
    }

    /// View size — the paper's `polylog(N)` knowledge bound: own cluster
    /// plus `deg(C)` neighbor clusters of `O(logN)` members each.
    pub fn size(&self) -> usize {
        self.known_ids().len()
    }
}

/// Outcome of a whole-system view audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewAudit {
    /// Number of views derived (= population).
    pub views: usize,
    /// Largest single view.
    pub max_view_size: usize,
    /// Violations found (empty = coherent).
    pub violations: Vec<String>,
}

impl ViewAudit {
    /// Whether the view discipline holds everywhere.
    pub fn coherent(&self) -> bool {
        self.violations.is_empty()
    }
}

impl NowSystem {
    /// Derives the local view of `node` per §3.1.
    ///
    /// # Panics
    /// Panics if `node` is not in the network.
    pub fn node_view(&self, node: NodeId) -> NodeView {
        // INVARIANT: documented `# Panics` contract on node_view.
        let cluster = self.node_cluster(node).expect("node must be live");
        let own_members: BTreeSet<NodeId> = self
            .cluster(cluster)
            // INVARIANT: a live node's home cluster is live by the
            // registry's lockstep bookkeeping.
            .expect("live cluster")
            .members()
            .collect();
        let mut neighbor_members = BTreeMap::new();
        for &nbr in self.overlay().neighbors(cluster) {
            if let Some(c) = self.cluster(nbr) {
                neighbor_members.insert(nbr, c.members().collect());
            }
        }
        NodeView {
            node,
            cluster,
            own_members,
            neighbor_members,
        }
    }

    /// Audits view completeness, parsimony, symmetry, and quorum
    /// sufficiency for the whole system. `O(n · deg · |C|)`.
    pub fn audit_views(&self) -> ViewAudit {
        let mut violations = Vec::new();
        let mut max_view = 0usize;
        let node_ids = self.node_ids();

        for &node in &node_ids {
            let view = self.node_view(node);
            max_view = max_view.max(view.size());
            // Completeness of own cluster.
            if !view.own_members.contains(&node) {
                violations.push(format!("{node} missing from its own view"));
            }
            // Symmetry with every known id: the peer's view must contain
            // this node iff they share a cluster or an overlay edge.
            for &peer in view.own_members.iter() {
                if peer == node {
                    continue;
                }
                let peer_view = self.node_view(peer);
                if !peer_view.own_members.contains(&node) {
                    violations.push(format!("asymmetric intra-cluster link {node}↔{peer}"));
                }
            }
        }

        // Quorum sufficiency per overlay edge, checked at cluster
        // granularity (views are derived, so it reduces to: both
        // endpoints of every edge are live clusters with full member
        // knowledge of each other).
        for c in self.cluster_ids() {
            for &d in self.overlay().neighbors(c) {
                if self.cluster(d).is_none() {
                    violations.push(format!("overlay edge {c}–{d} dangles on a dead cluster"));
                    continue;
                }
                // A node of d must know all of c to evaluate "more than
                // half of C sent the same message".
                let c_size = self.cluster(c).map(|x| x.size()).unwrap_or(0);
                if let Some(dc) = self.cluster(d) {
                    if let Some(member) = dc.members().next() {
                        let view = self.node_view(member);
                        let known_of_c =
                            view.neighbor_members.get(&c).map(|s| s.len()).unwrap_or(0);
                        if known_of_c != c_size {
                            violations.push(format!(
                                "{member} of {d} knows {known_of_c}/{c_size} of neighbor {c}"
                            ));
                        }
                    }
                }
            }
        }

        ViewAudit {
            views: node_ids.len(),
            max_view_size: max_view,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NowParams;

    fn system(n0: usize, seed: u64) -> NowSystem {
        let params = NowParams::for_capacity(1 << 10).unwrap();
        NowSystem::init_fast(params, n0, 0.15, seed)
    }

    #[test]
    fn fresh_system_views_are_coherent() {
        let sys = system(160, 1);
        let audit = sys.audit_views();
        assert!(audit.coherent(), "{:?}", audit.violations);
        assert_eq!(audit.views, 160);
    }

    #[test]
    fn views_stay_coherent_under_churn() {
        let mut sys = system(160, 2);
        for i in 0..40 {
            if i % 3 == 0 {
                let node = sys.node_ids()[i % sys.population() as usize];
                let _ = sys.leave(node);
            } else {
                sys.join(i % 5 == 0);
            }
        }
        let audit = sys.audit_views();
        assert!(audit.coherent(), "{:?}", audit.violations);
    }

    #[test]
    fn view_contains_own_cluster_and_neighbors_only() {
        let sys = system(200, 3);
        let node = sys.node_ids()[0];
        let view = sys.node_view(node);
        let home = view.cluster;
        // Own cluster complete.
        let expected: BTreeSet<NodeId> = sys.cluster(home).unwrap().members().collect();
        assert_eq!(view.own_members, expected);
        // Neighbor map matches the overlay exactly (parsimony).
        let overlay_nbrs: BTreeSet<ClusterId> =
            sys.overlay().neighbors(home).iter().copied().collect();
        let view_nbrs: BTreeSet<ClusterId> = view.neighbor_members.keys().copied().collect();
        assert_eq!(view_nbrs, overlay_nbrs);
    }

    #[test]
    fn view_size_is_polylog_not_linear() {
        let sys = system(400, 4);
        let audit = sys.audit_views();
        // View ≤ (deg+1)·max_cluster ≪ n.
        let bound = (sys.params().over().degree_cap() + 1) * sys.params().max_cluster_size();
        assert!(audit.max_view_size <= bound);
        assert!(
            (audit.max_view_size as u64) < sys.population(),
            "a node should not know the whole network after init"
        );
    }

    #[test]
    fn quorum_sufficiency_detects_staged_corruption() {
        // Sanity of the audit itself: views derived from a consistent
        // system are coherent; the audit machinery runs every check.
        let sys = system(120, 5);
        let audit = sys.audit_views();
        assert!(audit.coherent());
        assert!(audit.max_view_size > 0);
    }

    #[test]
    fn known_ids_dedupe_across_clusters() {
        let sys = system(100, 6);
        let node = sys.node_ids()[0];
        let view = sys.node_view(node);
        let all = view.known_ids();
        assert!(all.contains(&node));
        assert_eq!(all.len(), view.size());
    }
}
