//! End-to-end integration: initialization → churn → invariants, across
//! all workspace crates.

use now_bft::adversary::RandomChurn;
use now_bft::core::init::init_discovered;
use now_bft::core::{NowError, NowParams, NowSystem};
use now_bft::graph::gen;
use now_bft::net::{CostKind, DetRng};
use now_bft::sim::{run, RunConfig};

fn params() -> NowParams {
    NowParams::new(1 << 10, 3, 1.5, 0.25, 0.05).unwrap()
}

#[test]
fn fast_init_churn_audit_cycle() {
    let mut sys = NowSystem::init_fast(params(), 180, 0.10, 1);
    let mut churn = RandomChurn::balanced(0.10);
    let report = run(&mut sys, &mut churn, RunConfig::for_steps(80));
    assert_eq!(report.steps, 80);
    sys.check_consistency().unwrap();
    let audit = sys.audit();
    assert!(audit.size_bounds_ok);
    assert!(audit.population > 100);
    // Ledger saw every operation family.
    for kind in [
        CostKind::Join,
        CostKind::Leave,
        CostKind::Exchange,
        CostKind::RandCl,
    ] {
        assert!(sys.ledger().stats(kind).count > 0, "{kind} missing");
    }
}

#[test]
fn discovered_init_matches_fast_init_shape() {
    // The genuinely executed initialization (L0) produces a system with
    // the same structural shape as the fast path.
    let n = 120usize;
    let mut rng = DetRng::new(2);
    let bootstrap = gen::erdos_renyi(n, 0.18, &mut rng);
    let corrupt: Vec<bool> = (0..n).map(|i| i % 10 == 0).collect();
    let slow = init_discovered(params(), &bootstrap, &corrupt, 3).unwrap();
    let fast = NowSystem::init_with_corruption(params(), &corrupt, 3);
    slow.check_consistency().unwrap();
    assert_eq!(slow.population(), fast.population());
    assert_eq!(slow.byz_population(), fast.byz_population());
    assert_eq!(slow.cluster_count(), fast.cluster_count());
    // The measured (L0) initialization records real discovery costs.
    let slow_disc = slow.ledger().stats(CostKind::Discovery);
    assert!(slow_disc.total_messages > 0);
    assert!(slow_disc.total_rounds > 0);
}

#[test]
fn runs_replay_bit_identically() {
    let go = || {
        let mut sys = NowSystem::init_fast(params(), 160, 0.15, 7);
        let mut churn = RandomChurn::balanced(0.15);
        let report = run(
            &mut sys,
            &mut churn,
            RunConfig {
                steps: 60,
                audit_every: 1,
                seed: 9,
            },
        );
        (
            sys.node_ids(),
            sys.cluster_ids(),
            report.peak_byz_fraction.to_bits(),
            sys.ledger().total(),
        )
    };
    assert_eq!(go(), go(), "same seed must replay identically");
}

#[test]
fn population_floor_is_enforced_under_aggressive_shrink() {
    let mut sys = NowSystem::init_fast(params(), 40, 0.0, 4);
    let floor = sys.params().min_population();
    let mut refused = 0;
    for _ in 0..30 {
        let node = sys.node_ids()[0];
        match sys.leave(node) {
            Ok(()) => {}
            Err(NowError::PopulationFloor { .. }) => refused += 1,
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(refused > 0, "floor must engage");
    assert_eq!(sys.population(), floor);
    sys.check_consistency().unwrap();
}

#[test]
fn split_and_merge_fire_across_the_band() {
    let mut sys = NowSystem::init_fast(params(), 200, 0.10, 5);
    // Grow hard: splits must fire.
    for _ in 0..150 {
        sys.join(false);
    }
    let (_, _, splits, _) = sys.op_counts();
    assert!(splits > 0);
    // Shrink hard: merges must fire.
    for _ in 0..200 {
        let node = sys.node_ids()[0];
        if sys.leave(node).is_err() {
            break;
        }
    }
    let (_, _, _, merges) = sys.op_counts();
    assert!(merges > 0);
    sys.check_consistency().unwrap();
    assert!(sys.audit().size_bounds_ok);
}

#[test]
fn overlay_stays_healthy_through_system_churn() {
    let mut sys = NowSystem::init_fast(params(), 240, 0.10, 6);
    let mut churn = RandomChurn::balanced(0.10);
    run(&mut sys, &mut churn, RunConfig::for_steps(100));
    let overlay = sys.overlay_audit();
    assert!(overlay.connected, "overlay disconnected by churn");
    assert!(overlay.degree_bound_holds, "Property 2 violated");
    assert!(
        overlay.lambda2 > 0.5,
        "expansion collapsed: {}",
        overlay.lambda2
    );
    assert_eq!(overlay.vertex_count, sys.cluster_count());
}

#[test]
fn byzantine_arrivals_are_tracked_exactly() {
    let mut sys = NowSystem::init_fast(params(), 150, 0.0, 8);
    assert_eq!(sys.byz_population(), 0);
    for i in 0..30 {
        sys.join(i % 3 != 0); // every third arrival corrupt
    }
    assert_eq!(sys.byz_population(), 10);
    let byz = sys.byz_node_ids();
    assert_eq!(byz.len(), 10);
    for b in byz {
        assert!(!sys.is_honest(b).unwrap());
    }
}
