//! Attack-resilience integration tests: the §3.3 comparison and the
//! forced-leave (DoS) countermeasure, across `now-core`,
//! `now-adversary`, and `now-sim`.

use now_bft::adversary::{Action, Adversary, ForcedLeaveAttack, JoinLeaveAttack};
use now_bft::core::{NowParams, NowSystem};
use now_bft::net::DetRng;
use now_bft::sim::baselines::no_shuffle_params;

fn params() -> NowParams {
    NowParams::new(1 << 10, 3, 2.0, 0.15, 0.05).unwrap()
}

/// Drives `adv` for `steps`, returning the peak Byzantine fraction seen
/// at the adversary's (possibly retargeted) aim cluster.
fn drive(sys: &mut NowSystem, adv: &mut JoinLeaveAttack, steps: u64, seed: u64) -> f64 {
    let mut rng = DetRng::new(seed);
    let mut peak = 0.0f64;
    for _ in 0..steps {
        match adv.decide(sys, &mut rng) {
            Action::Join { honest, contact } => {
                match contact {
                    Some(c) if sys.cluster(c).is_some() => sys.join_via(c, honest),
                    _ => sys.join(honest),
                };
            }
            Action::Leave { node } => {
                let _ = sys.leave(node);
            }
            Action::Idle => {}
        }
        if let Some(c) = sys.cluster(adv.target) {
            peak = peak.max(c.byz_fraction());
        }
    }
    peak
}

#[test]
fn shuffling_beats_the_join_leave_attack() {
    let steps = 400;
    let tau = 0.15;

    // Seeds are pinned to the vendored RNG stream (vendor/rand): the
    // peak is a transient, so the `< 1/3` bound below holds whp per
    // seed, not surely. Re-pin if the RNG stream ever changes.
    let (init_seed, drive_seed) = (1, 1001);

    let mut baseline = NowSystem::init_fast(no_shuffle_params(params()), 300, tau, init_seed);
    let target_b = baseline.cluster_ids()[0];
    let mut adv_b = JoinLeaveAttack::new(target_b, tau);
    let peak_baseline = drive(&mut baseline, &mut adv_b, steps, drive_seed);

    let mut now = NowSystem::init_fast(params(), 300, tau, init_seed);
    let target_n = now.cluster_ids()[0];
    let mut adv_n = JoinLeaveAttack::new(target_n, tau);
    let peak_now = drive(&mut now, &mut adv_n, steps, drive_seed);

    // The baseline's target accumulates monotonically; NOW's is reset by
    // every exchange. The gap is the paper's §3.3 argument.
    assert!(
        peak_baseline > peak_now + 0.05,
        "baseline peak {peak_baseline:.3} not clearly worse than NOW {peak_now:.3}"
    );
    assert!(
        peak_now < 1.0 / 3.0,
        "NOW lost a cluster to the paper-model attack: {peak_now:.3}"
    );
    baseline.check_consistency().unwrap();
    now.check_consistency().unwrap();
}

#[test]
fn forced_leaves_do_not_concentrate_byzantines() {
    // The DoS adversary evicts honest members of one cluster; NOW's
    // leave-triggered exchanges must keep the cluster's composition near
    // the global rate.
    let tau = 0.15;
    let mut sys = NowSystem::init_fast(params(), 300, tau, 23);
    let target = sys.cluster_ids()[1];
    let mut adv = ForcedLeaveAttack::new(target, tau);
    let mut rng = DetRng::new(24);
    let mut peak = 0.0f64;
    for _ in 0..200 {
        match adv.decide(&sys, &mut rng) {
            Action::Join { honest, contact } => {
                match contact {
                    Some(c) if sys.cluster(c).is_some() => sys.join_via(c, honest),
                    _ => sys.join(honest),
                };
            }
            Action::Leave { node } => {
                let _ = sys.leave(node);
            }
            Action::Idle => {}
        }
        if let Some(c) = sys.cluster(adv.target) {
            peak = peak.max(c.byz_fraction());
        }
    }
    assert!(
        peak < 0.45,
        "forced leaves concentrated byzantines to {peak:.3}"
    );
    sys.check_consistency().unwrap();
}

#[test]
fn no_shuffle_ablation_is_strictly_cheaper_but_weaker() {
    // The ablation trade-off in one test: disabling exchange removes
    // most of the join cost and most of the protection.
    let tau = 0.15;
    let steps = 300;

    let mut cheap = NowSystem::init_fast(no_shuffle_params(params()), 300, tau, 25);
    let t1 = cheap.cluster_ids()[0];
    let mut adv1 = JoinLeaveAttack::new(t1, tau);
    let peak_cheap = drive(&mut cheap, &mut adv1, steps, 26);
    let cost_cheap = cheap.ledger().total().messages;

    let mut full = NowSystem::init_fast(params(), 300, tau, 25);
    let t2 = full.cluster_ids()[0];
    let mut adv2 = JoinLeaveAttack::new(t2, tau);
    let peak_full = drive(&mut full, &mut adv2, steps, 26);
    let cost_full = full.ledger().total().messages;

    assert!(
        cost_cheap * 10 < cost_full,
        "shuffling is the dominant cost: {cost_cheap} vs {cost_full}"
    );
    assert!(
        peak_cheap > peak_full,
        "protection gap missing: {peak_cheap:.3} vs {peak_full:.3}"
    );
}
