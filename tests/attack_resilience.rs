//! Attack-resilience integration tests: the §3.3 comparison and the
//! forced-leave (DoS) countermeasure, across `now-core`,
//! `now-adversary`, and `now-sim`.
//!
//! All three tests assert over a 5-seed *ensemble* with quantile bands
//! (the pattern established by `endpoint_distribution_is_size_biased`;
//! see ROADMAP "statistical-test robustness"): the median must sit
//! comfortably inside the claimed regime and even the worst seed must
//! stay within the sampling-noise band, so a change to the vendored RNG
//! stream cannot silently invalidate the suite the way a single pinned
//! seed could.

use now_bft::adversary::{
    Action, Adversary, BatchDriver, BatchForcedLeave, BatchJoinLeave, BatchSplitForcing,
    ClusterPick, ForcedLeaveAttack, JoinLeaveAttack,
};
use now_bft::core::{NowParams, NowSystem, SecurityMode};
use now_bft::net::DetRng;
use now_bft::sim::baselines::no_shuffle_params;
use now_bft::sim::BatchRun;

fn params() -> NowParams {
    NowParams::new(1 << 10, 3, 2.0, 0.15, 0.05).unwrap()
}

/// Drives `adv` for `steps`, returning the peak Byzantine fraction seen
/// at the adversary's (possibly retargeted) aim cluster.
fn drive(sys: &mut NowSystem, adv: &mut JoinLeaveAttack, steps: u64, seed: u64) -> f64 {
    let mut rng = DetRng::new(seed);
    let mut peak = 0.0f64;
    for _ in 0..steps {
        match adv.decide(sys, &mut rng) {
            Action::Join { honest, contact } => {
                match contact {
                    Some(c) if sys.cluster(c).is_some() => sys.join_via(c, honest),
                    _ => sys.join(honest),
                };
            }
            Action::Leave { node } => {
                let _ = sys.leave(node);
            }
            Action::Idle => {}
        }
        if let Some(c) = sys.cluster(adv.target) {
            peak = peak.max(c.byz_fraction());
        }
    }
    peak
}

/// Sorted copy, for quantile reads.
fn sorted(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs
}

#[test]
fn shuffling_beats_the_join_leave_attack() {
    let steps = 300;
    let tau = 0.15;
    let seeds: [(u64, u64); 5] = [(1, 1001), (2, 1002), (3, 1003), (4, 1004), (5, 1005)];

    let mut gaps = Vec::new();
    let mut now_peaks = Vec::new();
    let mut baseline_wins = 0usize;
    for &(init_seed, drive_seed) in &seeds {
        let mut baseline = NowSystem::init_fast(no_shuffle_params(params()), 300, tau, init_seed);
        let target_b = baseline.cluster_ids()[0];
        let mut adv_b = JoinLeaveAttack::new(target_b, tau);
        let peak_baseline = drive(&mut baseline, &mut adv_b, steps, drive_seed);

        let mut now = NowSystem::init_fast(params(), 300, tau, init_seed);
        let target_n = now.cluster_ids()[0];
        let mut adv_n = JoinLeaveAttack::new(target_n, tau);
        let peak_now = drive(&mut now, &mut adv_n, steps, drive_seed);

        baseline.check_consistency().unwrap();
        now.check_consistency().unwrap();
        if peak_baseline > peak_now {
            baseline_wins += 1;
        }
        gaps.push(peak_baseline - peak_now);
        now_peaks.push(peak_now);
    }
    let gaps = sorted(gaps);
    let now_peaks = sorted(now_peaks);

    // The baseline's target accumulates monotonically; NOW's is reset by
    // every exchange. The gap is the paper's §3.3 argument.
    assert!(
        gaps[gaps.len() / 2] > 0.05,
        "median protection gap too small: {gaps:?}"
    );
    assert!(
        baseline_wins >= seeds.len() - 1,
        "baseline not clearly worse on {baseline_wins}/{} seeds (gaps {gaps:?})",
        seeds.len()
    );
    // NOW keeps the attacked cluster below the 1/3 compromise line on
    // the median seed; the per-seed bound is quantified as a count
    // (clusters hold ~20 members here, so one member is ±0.05 of
    // fraction — a transient graze of 1/3 on a minority of seeds is
    // granularity, not capture). Measured ensemble on the vendored
    // stream: peaks ≈ [0.275, 0.323, 0.326, 0.333, 0.342] — the old
    // single-seed `< 1/3` assertion held only on its pinned seed.
    assert!(
        now_peaks[now_peaks.len() / 2] < 1.0 / 3.0,
        "NOW median peak crossed 1/3: {now_peaks:?}"
    );
    let crossed = now_peaks.iter().filter(|&&p| p >= 1.0 / 3.0).count();
    assert!(
        crossed <= 3,
        "NOW peak reached 1/3 on {crossed}/5 seeds: {now_peaks:?}"
    );
    assert!(
        *now_peaks.last().unwrap() < 0.40,
        "NOW worst-seed peak out of band: {now_peaks:?}"
    );
}

#[test]
fn forced_leaves_do_not_concentrate_byzantines() {
    // The DoS adversary evicts honest members of one cluster; NOW's
    // leave-triggered exchanges must keep the cluster's composition near
    // the global rate.
    let tau = 0.15;
    let seeds: [(u64, u64); 5] = [(23, 24), (33, 34), (43, 44), (53, 54), (63, 64)];
    let mut peaks = Vec::new();
    for &(init_seed, drive_seed) in &seeds {
        let mut sys = NowSystem::init_fast(params(), 300, tau, init_seed);
        let target = sys.cluster_ids()[1];
        let mut adv = ForcedLeaveAttack::new(target, tau);
        let mut rng = DetRng::new(drive_seed);
        let mut peak = 0.0f64;
        for _ in 0..200 {
            match adv.decide(&sys, &mut rng) {
                Action::Join { honest, contact } => {
                    match contact {
                        Some(c) if sys.cluster(c).is_some() => sys.join_via(c, honest),
                        _ => sys.join(honest),
                    };
                }
                Action::Leave { node } => {
                    let _ = sys.leave(node);
                }
                Action::Idle => {}
            }
            if let Some(c) = sys.cluster(adv.target) {
                peak = peak.max(c.byz_fraction());
            }
        }
        sys.check_consistency().unwrap();
        peaks.push(peak);
    }
    let peaks = sorted(peaks);
    // Measured ensemble on the vendored stream:
    // peaks ≈ [0.290, 0.350, 0.375, 0.389, 0.467] — the old single-seed
    // `< 0.45` assertion held only on its pinned seed. The worst seed
    // must stay below the forgeability line (1/2), deep concentration
    // (> 0.40) must stay a ≤ 2-of-5 minority, and the median must stay
    // below 0.40.
    assert!(
        peaks[peaks.len() / 2] < 0.40,
        "forced leaves concentrated byzantines on the median seed: {peaks:?}"
    );
    let deep = peaks.iter().filter(|&&p| p > 0.40).count();
    assert!(
        deep <= 2,
        "forced leaves concentrated > 0.40 on {deep}/5 seeds: {peaks:?}"
    );
    assert!(
        *peaks.last().unwrap() < 0.50,
        "forced leaves crossed the forgeability line on the worst seed: {peaks:?}"
    );
}

/// Runs one batched attack driver for 60 steps on a fresh system and
/// returns `(binding violations, forgeable-cluster violations)` over
/// the audited steps.
fn batched_attack_violations(
    mut driver: Box<dyn BatchDriver>,
    init_seed: u64,
    drive_seed: u64,
) -> (usize, usize) {
    let mut sys = NowSystem::init_fast(params(), 300, 0.15, init_seed);
    let report = BatchRun::new().run(&mut sys, driver.as_mut(), 60, drive_seed);
    sys.check_consistency().unwrap();
    let forgeable = report
        .violations
        .iter()
        .filter(|v| v.kind == now_bft::sim::ViolationKind::Forgeable)
        .count();
    (report.binding_violations(SecurityMode::Plain), forgeable)
}

/// Calibrated violation-count bounds for each batched attack driver, as
/// a 5-seed quantile ensemble (module docs): at τ = 0.15 with k = 3
/// (clusters of ~30, 1/3 threshold at 10 Byzantine members) the NOW
/// protocol *absorbs* all three batched attacks — binding violations
/// stay transient grazes of the 1/3 count on a minority of the 60
/// audited steps, and no cluster ever becomes forgeable (> 1/2). The
/// per-driver bounds are ~2× the measured ensembles on the vendored
/// stream (60 steps, width 4): join-leave [2, 4, 6, 6, 8],
/// forced-leave [0, 2, 2, 4, 8], split-forcing [0, 0, 2, 2, 2].
#[test]
fn batched_attacks_stay_within_calibrated_violation_bounds() {
    let seeds: [(u64, u64); 5] = [(71, 72), (73, 74), (75, 76), (77, 78), (79, 80)];
    type MakeDriver = fn() -> Box<dyn BatchDriver>;
    let drivers: [(&str, MakeDriver, usize, usize); 3] = [
        (
            "join-leave",
            || Box::new(BatchJoinLeave::new(4, 0.15).with_pick(ClusterPick::Largest)),
            12, // median bound (measured 6)
            18, // worst-seed bound (measured 8)
        ),
        (
            "forced-leave",
            || Box::new(BatchForcedLeave::new(4, 0.15).with_pick(ClusterPick::Smallest)),
            8,  // median bound (measured 2)
            16, // worst-seed bound (measured 8)
        ),
        (
            "split-forcing",
            || Box::new(BatchSplitForcing::new(4, 0.15).with_pick(ClusterPick::Largest)),
            6,  // median bound (measured 2)
            10, // worst-seed bound (measured 2)
        ),
    ];
    for (name, make, median_bound, worst_bound) in drivers {
        let mut counts = Vec::new();
        for &(init, drive) in &seeds {
            let (binding, forgeable) = batched_attack_violations(make(), init, drive);
            assert_eq!(
                forgeable, 0,
                "{name}: a cluster became forgeable on seed ({init}, {drive})"
            );
            counts.push(binding);
        }
        counts.sort_unstable();
        assert!(
            counts[counts.len() / 2] <= median_bound,
            "{name}: median binding violations beyond the calibrated bound \
             {median_bound}, ensemble {counts:?}"
        );
        assert!(
            *counts.last().unwrap() <= worst_bound,
            "{name}: worst seed beyond the calibrated bound {worst_bound}, \
             ensemble {counts:?}"
        );
    }
}

#[test]
fn no_shuffle_ablation_is_strictly_cheaper_but_weaker() {
    // The ablation trade-off: disabling exchange removes most of the
    // join cost and most of the protection.
    let tau = 0.15;
    let steps = 250;
    let seeds: [(u64, u64); 5] = [(25, 26), (27, 28), (29, 30), (31, 32), (35, 36)];

    let mut protection_gaps = Vec::new();
    let mut cheap_wins = 0usize;
    for &(init_seed, drive_seed) in &seeds {
        let mut cheap = NowSystem::init_fast(no_shuffle_params(params()), 300, tau, init_seed);
        let t1 = cheap.cluster_ids()[0];
        let mut adv1 = JoinLeaveAttack::new(t1, tau);
        let peak_cheap = drive(&mut cheap, &mut adv1, steps, drive_seed);
        let cost_cheap = cheap.ledger().total().messages;

        let mut full = NowSystem::init_fast(params(), 300, tau, init_seed);
        let t2 = full.cluster_ids()[0];
        let mut adv2 = JoinLeaveAttack::new(t2, tau);
        let peak_full = drive(&mut full, &mut adv2, steps, drive_seed);
        let cost_full = full.ledger().total().messages;

        // The cost separation is structural (shuffling dominates every
        // join), not statistical: it must hold on every seed.
        assert!(
            cost_cheap * 10 < cost_full,
            "shuffling is the dominant cost: {cost_cheap} vs {cost_full} (seed {init_seed})"
        );
        if peak_cheap > peak_full {
            cheap_wins += 1;
        }
        protection_gaps.push(peak_cheap - peak_full);
    }
    let gaps = sorted(protection_gaps);
    assert!(
        gaps[gaps.len() / 2] > 0.0,
        "median protection gap missing: {gaps:?}"
    );
    assert!(
        cheap_wins >= seeds.len() - 1,
        "ablation not weaker on {cheap_wins}/{} seeds (gaps {gaps:?})",
        seeds.len()
    );
}
