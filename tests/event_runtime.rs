//! End-to-end contracts of the deterministic event-driven network
//! runtime:
//!
//! 1. **Worker-count invariance** — a NOW run on the event scheduler
//!    (`BatchExec::Event`) is byte-identical across pools of 1, 2, 4,
//!    and 8 workers: every outcome is a pure function of
//!    `(seed, config)`, never of the thread schedule.
//! 2. **Partition heal ⇒ eventual delivery** — every message the
//!    scheduler accepts (not dropped at send time) is eventually
//!    delivered, across a partition that heals mid-run; accepted +
//!    dropped accounts for every send.

use now_bft::core::{NowParams, NowSystem, WavePool};
use now_bft::net::{CostKind, EventNet, EventNetConfig};
use now_bft::sim::{BatchExec, BatchRandomChurn, BatchRun};
use proptest::prelude::*;

/// Full deterministic fingerprint of an event-driven NOW run: report
/// aggregates, end state, and ledger statistics.
#[allow(clippy::type_complexity)]
fn event_run(
    threads: usize,
    net: EventNetConfig,
    seed: u64,
) -> (
    (u64, u64, u64, u64, u64, u64, usize, u64),
    (
        u64,
        u64,
        Vec<now_bft::net::NodeId>,
        Vec<now_bft::net::ClusterId>,
    ),
    Vec<now_bft::net::CostStats>,
) {
    let params = NowParams::for_capacity(1 << 10).expect("params");
    let mut sys = NowSystem::init_fast(params, 200, 0.12, seed);
    let mut driver = BatchRandomChurn::balanced(5, 0.12);
    let pool = WavePool::new(threads);
    let report = BatchRun::new()
        .exec(BatchExec::Event(net))
        .in_pool(&pool)
        .run(&mut sys, &mut driver, 12, seed ^ 0xD1CE);
    sys.check_consistency().expect("post-run consistency");
    (
        (
            report.steps,
            report.joins,
            report.leaves,
            report.rejected,
            report.dropped,
            report.waves,
            report.max_wave_width,
            report.rounds_parallel,
        ),
        (
            sys.population(),
            sys.byz_population(),
            sys.node_ids(),
            sys.cluster_ids(),
        ),
        CostKind::ALL
            .iter()
            .map(|&k| sys.ledger().stats(k))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// NOW on the event scheduler replays byte-identically from
    /// `(seed, config)` across worker pools of 1, 2, 4, and 8 threads,
    /// for arbitrary seeds and per-link network models.
    #[test]
    fn event_runs_are_worker_count_invariant(
        seed in any::<u64>(),
        latency in 1u64..5,
        jitter in 0u64..5,
        drop in 0u32..30,
    ) {
        let net = EventNetConfig::ideal()
            .with_latency(latency)
            .with_jitter(jitter)
            .with_drop(f64::from(drop) / 100.0);
        let baseline = event_run(1, net, seed);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(
                &baseline,
                &event_run(threads, net, seed),
                "threads=1 vs threads={} diverged",
                threads
            );
        }
    }

    /// Message conservation at the run-report level: every message an
    /// event run sends is either delivered or dropped (`sent =
    /// delivered + dropped`), and wave engines report zero network
    /// traffic — the counters only ever count the event net.
    #[test]
    fn event_runs_conserve_sent_messages(
        seed in any::<u64>(),
        drop in 0u32..40,
    ) {
        let net = EventNetConfig::ideal()
            .with_latency(2)
            .with_drop(f64::from(drop) / 100.0);
        let pool = WavePool::new(2);

        let params = NowParams::for_capacity(1 << 10).expect("params");
        let mut sys = NowSystem::init_fast(params, 200, 0.12, seed);
        let mut driver = BatchRandomChurn::balanced(5, 0.12);
        let report = BatchRun::new()
            .exec(BatchExec::Event(net))
            .in_pool(&pool)
            .run(&mut sys, &mut driver, 12, seed ^ 0xACC7);
        prop_assert_eq!(report.sent, report.delivered + report.dropped);
        prop_assert!(report.sent > 0, "12 churn steps must send messages");

        let params = NowParams::for_capacity(1 << 10).expect("params");
        let mut sys = NowSystem::init_fast(params, 200, 0.12, seed);
        let mut driver = BatchRandomChurn::balanced(5, 0.12);
        let waved = BatchRun::new()
            .exec(BatchExec::Threaded(2))
            .in_pool(&pool)
            .run(&mut sys, &mut driver, 12, seed ^ 0xACC7);
        prop_assert_eq!(waved.sent, 0, "wave engines never touch the net");
        prop_assert_eq!(waved.delivered, 0);
    }

    /// Across a partition that heals mid-run, every send the scheduler
    /// accepts is eventually delivered, and accepted + dropped equals
    /// messages sent — nothing is lost silently, nothing arrives twice.
    #[test]
    fn healed_partitions_deliver_every_accepted_message(
        seed in any::<u64>(),
        heal_at in 1u64..20,
        latency in 1u64..6,
        jitter in 0u64..4,
    ) {
        const N: usize = 6;
        const VOLLEYS: u64 = 8;
        let config = EventNetConfig::ideal()
            .with_latency(latency)
            .with_jitter(jitter)
            .with_partition(2)
            .healing_at(heal_at);
        let mut net: EventNet<(usize, u64)> = EventNet::new(N, config, seed);

        // All-to-all volleys straddling the heal: deliveries advance
        // virtual time between volleys, so sends land before, across,
        // and after the partition boundary.
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        let mut received = Vec::new();
        for volley in 0..VOLLEYS {
            for from in 0..N {
                for to in 0..N {
                    if net.send(from, to, (from, volley)).is_none() {
                        accepted += 1;
                    } else {
                        rejected += 1;
                    }
                }
            }
            // Drain half the queue so time advances past the heal.
            for _ in 0..(N * N / 2) {
                match net.pop() {
                    Some((time, env)) => received.push((time, env.from, env.to, env.payload)),
                    None => break,
                }
            }
        }
        while let Some((time, env)) = net.pop() {
            received.push((time, env.from, env.to, env.payload));
        }

        prop_assert_eq!(net.messages_sent(), accepted + rejected);
        prop_assert_eq!(
            received.len() as u64, accepted,
            "every accepted message must eventually be delivered"
        );
        prop_assert_eq!(net.delivered(), accepted);
        prop_assert_eq!(net.dropped(), rejected);
        // Deliveries came out in nondecreasing virtual time.
        prop_assert!(received.windows(2).all(|w| w[0].0 <= w[1].0));
        // Once virtual time guarantees delivery at or after the heal
        // (`now + latency ≥ heal_at` ⇒ every schedule lands healed),
        // cross-group sends go through: this config has no random
        // loss, so nothing else can cut them.
        if net.now() + latency >= heal_at {
            let before = net.dropped();
            for from in 0..N {
                for to in 0..N {
                    prop_assert!(
                        net.send(from, to, (from, u64::MAX)).is_none(),
                        "post-heal send {}→{} was dropped",
                        from,
                        to
                    );
                }
            }
            prop_assert_eq!(net.dropped(), before);
        }
    }
}
