//! Integration coverage for the paper's stated extensions, wired
//! end-to-end through the facade crate:
//!
//! * §2 footnote — parallel join/leave batches;
//! * §2 relaxation — generalized population band `N^{1/y} ≤ n ≤ N^z`;
//! * Remark 1 — crypto-hardened τ < 1/2 deployments;
//! * §6 future work — sub-quadratic initialization, asynchronous
//!   agreement;
//! * reference [12] — secure polling on the live overlay.

use now_bft::agreement::{run_ben_or, ByzPlan};
use now_bft::apps::poll;
use now_bft::core::init_tree::init_tree_discovered;
use now_bft::core::{NowParams, NowSystem, SecurityMode};
use now_bft::graph::gen;
use now_bft::net::{CostKind, DetRng, Ledger};
use now_bft::sim::{BatchRandomChurn, BatchRun, ChurnStyle, Scenario, ViolationKind};
use std::collections::BTreeSet;

#[test]
fn batched_and_serial_runs_preserve_the_same_invariants() {
    let params = NowParams::new(1 << 10, 4, 1.5, 0.30, 0.05).unwrap();
    let mut sys = NowSystem::init_fast(params, 240, 0.1, 71);
    let mut driver = BatchRandomChurn::balanced(6, 0.1);
    let report = BatchRun::new().run(&mut sys, &mut driver, 30, 72);
    assert_eq!(sys.time_step(), 30, "one time step per batch");
    assert!(report.joins + report.leaves > 120, "6-wide × 30 steps");
    assert!(
        report.binding_violations(SecurityMode::Plain) == 0,
        "batching must not break Theorem 3 at τ = 0.1, k = 4: {:?}",
        report.violations
    );
    // Six clusters, overlay degree ≥ 5: every footprint overlaps, so the
    // scheduler mostly serializes here — but never does worse than
    // serial, and its schedule covers every admitted operation.
    assert!(report.parallel_speedup() >= 1.0);
    assert!(report.rounds_parallel <= report.rounds_serial);
    assert!(report.waves >= report.steps);
    sys.check_consistency().unwrap();
}

#[test]
fn sparse_overlays_unlock_wave_parallelism() {
    // The scheduling payoff of the §2 footnote needs cluster count ≫
    // overlay degree: capacity 16 gives target degree 5, and 64
    // clusters leave room for disjoint footprints.
    let params = NowParams::for_capacity(16).unwrap();
    let mut sys = NowSystem::init_fast(params, 64 * params.target_cluster_size(), 0.1, 73);
    let mut driver = BatchRandomChurn::balanced(8, 0.1);
    let report = BatchRun::new().run(&mut sys, &mut driver, 10, 74);
    assert!(
        report.parallel_speedup() > 1.2,
        "sparse overlay should coalesce waves: ×{:.2}",
        report.parallel_speedup()
    );
    assert!(report.max_wave_width >= 2, "some wave ran ops concurrently");
    assert!(report.waves < report.joins + report.leaves);
    sys.check_consistency().unwrap();
}

#[test]
fn widened_band_supports_population_beyond_capacity() {
    // z = 1.2: the model ceiling exceeds N itself; the protocol keeps
    // its size band and audits clean while the population crosses N.
    let params = NowParams::new(1 << 8, 3, 1.5, 0.30, 0.05)
        .unwrap()
        .with_population_exponents(2.0, 1.2)
        .unwrap();
    assert_eq!(params.max_population(), 776); // 256^1.2
    let mut sys = NowSystem::init_fast(params, 100, 0.1, 73);
    while sys.population() < 400 {
        sys.try_join(sys.population() % 10 != 0).unwrap();
    }
    assert!(sys.population() > (1 << 8), "population beyond N");
    let audit = sys.audit();
    assert!(audit.size_bounds_ok);
    assert!(audit.invariant_ok());
    sys.check_consistency().unwrap();
}

#[test]
fn authenticated_deployment_survives_tau_past_one_third() {
    // End-to-end Remark 1: τ = 0.38 churn on an authenticated system.
    // The binding (majority) invariant holds at k = 8 for this seed;
    // the plain 2/3 target fails pervasively, as it must.
    let (report, sys) = Scenario::new(1 << 10)
        .k(8)
        .tau(0.38)
        .authenticated()
        .churn(ChurnStyle::Balanced)
        .steps(80)
        .seed(74)
        .run()
        .unwrap();
    assert_eq!(sys.params().security(), SecurityMode::Authenticated);
    assert!(report.count(ViolationKind::NotTwoThirdsHonest) > 50);
    assert!(
        report.count(ViolationKind::NotMajorityHonest) * 4
            < report.count(ViolationKind::NotTwoThirdsHonest),
        "majority failures ({}) must be far rarer than 2/3 failures ({})",
        report.count(ViolationKind::NotMajorityHonest),
        report.count(ViolationKind::NotTwoThirdsHonest)
    );
    sys.check_consistency().unwrap();
}

#[test]
fn tree_init_system_runs_the_maintenance_phase() {
    // The cheap initialization hands over to the ordinary maintenance
    // machinery: churn after a tree-discovered boot behaves exactly
    // like churn after a flooding boot.
    let params = NowParams::for_capacity(1 << 10).unwrap();
    let mut rng = DetRng::new(75);
    let g = gen::erdos_renyi(120, 0.2, &mut rng);
    let corrupt: Vec<bool> = (0..120).map(|i| i % 10 == 0).collect();
    // Tree discovery can lose the per-id vote when a node's neighborhood
    // is Byzantine-heavy; the documented remedy is retrying with more
    // trees (see init_tree.rs), so drive it exactly as a caller would.
    let mut sys = (0..4)
        .find_map(|attempt| {
            init_tree_discovered(params, &g, &corrupt, 9 + 4 * attempt, 76 + attempt as u64).ok()
        })
        .expect("some retry with more trees completes");
    let tree_units = sys.ledger().stats(CostKind::Discovery).total_messages;
    assert!(tree_units > 0);
    for i in 0..40 {
        if i % 2 == 0 {
            sys.join(true);
        } else {
            let node = sys.node_ids()[0];
            sys.leave(node).unwrap();
        }
    }
    sys.check_consistency().unwrap();
    assert!(sys.audit().size_bounds_ok);
}

#[test]
fn async_agreement_composes_with_cluster_membership() {
    // Run Ben-Or among the members of a live cluster (the substitution
    // §6 points at: an async randNum/agreement transport inside a
    // cluster), with the cluster's actual Byzantine members attacking.
    // Ben-Or's n/5 resilience is *stricter* than the cluster invariant
    // (> 2/3 honest only gives n/3): deploying it cluster-wide would
    // need τ sized below 1/5 − ε. Here we take a cluster that meets the
    // stricter bound (at τ = 0.15 most do) and let its actual Byzantine
    // members attack.
    let params = NowParams::new(1 << 12, 4, 1.5, 0.15, 0.05).unwrap();
    let sys = NowSystem::init_fast(params, 480, 0.15, 77);
    let cluster = sys
        .clusters()
        .find(|c| 5 * c.byz_count() < c.size() && c.byz_count() > 0)
        .expect("some cluster within Ben-Or resilience at τ = 0.15");
    let members = cluster.member_vec();
    let n = members.len();
    let byz: BTreeSet<usize> = members
        .iter()
        .enumerate()
        .filter(|(_, &m)| !sys.is_honest(m).unwrap())
        .map(|(port, _)| port)
        .collect();
    let inputs = vec![1u64; n];
    let mut ledger = Ledger::new();
    let mut rng = DetRng::new(78);
    let report = run_ben_or(
        n,
        &inputs,
        &byz,
        byz.len(),
        ByzPlan::Equivocate(0, 1),
        20,
        400,
        &mut ledger,
        &mut rng,
    );
    assert!(report.all_decided);
    assert_eq!(report.result.unanimous(), Some(&1));
}

#[test]
fn poll_distortion_bounded_through_churn() {
    let params = NowParams::new(1 << 10, 4, 1.5, 0.20, 0.05).unwrap();
    let mut sys = NowSystem::init_fast(params, 320, 0.2, 79);
    for round in 0..3 {
        let root = sys.cluster_ids()[0];
        let report = poll(&mut sys, root, |n| n.raw() % 2 == 0, true);
        assert!(report.complete);
        assert!(
            report.distortion() <= sys.byz_population(),
            "round {round}: distortion {} vs byz {}",
            report.distortion(),
            sys.byz_population()
        );
        assert_eq!(report.yes + report.no, sys.population());
        for _ in 0..25 {
            sys.join(false);
            let node = sys.node_ids()[3];
            sys.leave(node).unwrap();
        }
    }
    sys.check_consistency().unwrap();
}

#[test]
fn exchange_cap_trades_cost_for_refresh_volume() {
    // The Lemma 2–3 ablation end-to-end: capped exchange is cheaper per
    // operation but replaces fewer members per refresh.
    let base = NowParams::for_capacity(1 << 10).unwrap();
    let mut full = NowSystem::init_fast(base, 200, 0.2, 80);
    let mut capped = NowSystem::init_fast(base.with_exchange_cap(Some(2)), 200, 0.2, 80);
    for _ in 0..20 {
        full.join(true);
        capped.join(true);
    }
    let full_cost = full.ledger().stats(CostKind::Join).mean_messages();
    let capped_cost = capped.ledger().stats(CostKind::Join).mean_messages();
    assert!(
        capped_cost * 3.0 < full_cost,
        "cap 2 must be much cheaper: {capped_cost} vs {full_cost}"
    );
    full.check_consistency().unwrap();
    capped.check_consistency().unwrap();
}
