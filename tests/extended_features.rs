//! Integration coverage for the extension features: view audits,
//! quorum certificates, the scenario builder, and the oscillation
//! attack.

use now_bft::adversary::{Action, Adversary, Oscillation};
use now_bft::agreement::{certify_by_honest, QuorumCertificate, SigOracle};
use now_bft::core::{NowParams, NowSystem};
use now_bft::net::DetRng;
use now_bft::sim::{ChurnStyle, Scenario};
use std::collections::BTreeSet;

#[test]
fn view_discipline_survives_structural_churn() {
    // Views must stay coherent through splits AND merges, not just
    // member swaps.
    let params = NowParams::new(1 << 10, 2, 1.5, 0.15, 0.05).unwrap();
    let mut sys = NowSystem::init_fast(params, 140, 0.1, 31);
    // Force splits by growth.
    for _ in 0..80 {
        sys.join(false);
    }
    assert!(sys.op_counts().2 > 0, "need splits for this test");
    let audit = sys.audit_views();
    assert!(audit.coherent(), "{:?}", audit.violations);
    // Force merges by shrinkage.
    for _ in 0..120 {
        let node = sys.node_ids()[0];
        if sys.leave(node).is_err() {
            break;
        }
    }
    assert!(sys.op_counts().3 > 0, "need merges for this test");
    let audit = sys.audit_views();
    assert!(audit.coherent(), "{:?}", audit.violations);
}

#[test]
fn certificates_work_over_live_cluster_membership() {
    // Remark 1's crypto path wired to real cluster state: certify a
    // message by the honest members of a live cluster and verify it
    // against the cluster's member set.
    let params = NowParams::new(1 << 10, 3, 1.5, 0.2, 0.05).unwrap();
    let sys = NowSystem::init_fast(params, 180, 0.2, 32);
    let mut oracle = SigOracle::new();
    for cid in sys.cluster_ids() {
        let cluster = sys.cluster(cid).unwrap();
        let members: BTreeSet<_> = cluster.members().collect();
        let byz: BTreeSet<_> = cluster
            .members()
            .filter(|&m| !sys.is_honest(m).unwrap())
            .collect();
        // τ = 0.2 < 1/2 ⇒ certification must succeed for every cluster.
        let cert = certify_by_honest(cid.raw(), &members, &byz, &mut oracle)
            .unwrap_or_else(|e| panic!("cluster {cid}: {e}"));
        assert!(cert.verify(&members, &oracle));
        // The certificate is bound to this cluster's membership: it must
        // not verify against a different cluster of similar size.
        let other = sys.cluster_ids().into_iter().find(|&c| c != cid).unwrap();
        let other_members: BTreeSet<_> = sys.cluster(other).unwrap().members().collect();
        assert!(!cert.verify(&other_members, &oracle));
    }
}

#[test]
fn stale_certificate_dies_after_exchange() {
    // The quorum rule requires *current* composition knowledge: a
    // certificate assembled before a full exchange must fail against
    // the post-exchange member set (most signers have left).
    let params = NowParams::new(1 << 10, 3, 1.5, 0.2, 0.05).unwrap();
    let mut sys = NowSystem::init_fast(params, 240, 0.2, 33);
    let cid = sys.cluster_ids()[0];
    let mut oracle = SigOracle::new();
    let before: BTreeSet<_> = sys.cluster(cid).unwrap().members().collect();
    let cert = certify_by_honest(7, &before, &BTreeSet::new(), &mut oracle).unwrap();
    sys.exchange_all(cid, false);
    let after: BTreeSet<_> = sys.cluster(cid).unwrap().members().collect();
    assert!(
        !cert.verify(&after, &oracle),
        "stale certificate must not clear the new membership"
    );
    // A fresh certificate over the new membership works.
    let fresh = certify_by_honest(7, &after, &BTreeSet::new(), &mut oracle).unwrap();
    assert!(fresh.verify(&after, &oracle));
    let _ = QuorumCertificate::assemble(7, &[], &after, &oracle).unwrap_err();
}

#[test]
fn scenario_builder_reproduces_manual_runs() {
    let (report, sys) = Scenario::new(1 << 10)
        .k(3)
        .tau(0.10)
        .churn(ChurnStyle::Balanced)
        .steps(50)
        .seed(42)
        .run()
        .unwrap();
    assert_eq!(report.steps, 50);
    sys.check_consistency().unwrap();
    // Identical scenario, identical outcome.
    let (report2, sys2) = Scenario::new(1 << 10)
        .k(3)
        .tau(0.10)
        .churn(ChurnStyle::Balanced)
        .steps(50)
        .seed(42)
        .run()
        .unwrap();
    assert_eq!(
        report.peak_byz_fraction.to_bits(),
        report2.peak_byz_fraction.to_bits()
    );
    assert_eq!(sys.node_ids(), sys2.node_ids());
}

#[test]
fn oscillation_attack_cannot_break_the_band() {
    let params = NowParams::new(1 << 10, 2, 1.5, 0.1, 0.05).unwrap();
    let mut sys = NowSystem::init_fast(params, 160, 0.1, 34);
    let mut adv = Oscillation::new(0.1);
    let mut rng = DetRng::new(35);
    for _ in 0..300 {
        match adv.decide(&sys, &mut rng) {
            Action::Join { honest, .. } => {
                sys.join(honest);
            }
            Action::Leave { node } => {
                let _ = sys.leave(node);
            }
            Action::Idle => {}
        }
        let audit = sys.audit();
        assert!(
            audit.size_bounds_ok,
            "band broken at step {}",
            sys.time_step()
        );
    }
    sys.check_consistency().unwrap();
    let (_, _, splits, merges) = sys.op_counts();
    assert!(
        splits + merges > 0,
        "the whipsaw should cause structural ops"
    );
}
