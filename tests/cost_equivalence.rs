//! L0 ↔ L1 cost-model coherence (DESIGN.md's fidelity ladder).
//!
//! The cluster-level (L1) execution path accounts costs with closed-form
//! counts derived from participant sets; the message-level (L0)
//! protocols measure them from an actual bus. These tests pin the
//! relationship between the two so the ledger numbers quoted in
//! EXPERIMENTS.md are interpretable.

use now_bft::agreement::{rand_num_commit_reveal, rand_num_ideal, ByzPlan};
use now_bft::core::init::discover;
use now_bft::graph::gen;
use now_bft::net::{CostKind, DetRng, Ledger};
use std::collections::BTreeSet;

#[test]
fn rand_num_l1_formula_vs_l0_measurement() {
    // L1 accounts 2·c·(c−1) messages (the paper's O(log²N) commit +
    // reveal all-to-all). The L0 implementation transports both phases
    // over Bracha reliable broadcast, which multiplies by an O(c)
    // factor (echo/ready amplification). The ratio — the price of the
    // Byzantine-resilient transport — must be bounded by ~3c.
    for c in [7usize, 13, 19] {
        let mut l0_ledger = Ledger::new();
        let mut rng = DetRng::new(c as u64);
        let result = rand_num_commit_reveal(
            c,
            1 << 16,
            &BTreeSet::new(),
            ByzPlan::Silent,
            &mut l0_ledger,
            &mut rng,
        );
        let l0 = l0_ledger.stats(CostKind::RandNum).total_messages;

        let mut l1_ledger = Ledger::new();
        let _ = rand_num_ideal(1 << 16, c, 0, None, &mut l1_ledger, &mut rng);
        let l1 = l1_ledger.stats(CostKind::RandNum).total_messages;

        assert_eq!(l1, 2 * (c as u64) * (c as u64 - 1), "L1 closed form");
        assert!(l0 > l1, "real transport costs more than the ideal");
        assert!(
            l0 <= l1 * 3 * c as u64,
            "c={c}: L0 {l0} vs L1 {l1} — transport factor exceeded 3c"
        );
        assert!(result.unanimous().is_some(), "L0 must still agree");
    }
}

#[test]
fn rand_num_l0_and_l1_agree_on_security_semantics() {
    // Below 1/3 Byzantine, both paths produce an agreed value; the L1
    // ideal classifies identically to the L0 outcome.
    let c = 10usize;
    let byz: BTreeSet<usize> = [0, 1, 2].into_iter().collect(); // 3 < 10/3? 9 < 10 ✓
    let mut ledger = Ledger::new();
    let mut rng = DetRng::new(99);
    let result = rand_num_commit_reveal(
        c,
        1000,
        &byz,
        ByzPlan::Equivocate(5, 6),
        &mut ledger,
        &mut rng,
    );
    assert!(
        result.unanimous().is_some(),
        "L0 agreement below threshold: {:?}",
        result.decisions
    );
    assert!(now_bft::agreement::RandNumSecurity::from_counts(byz.len(), c).is_secure());
}

#[test]
fn discovery_measurement_vs_fast_path_formula_shape() {
    // The fast path charges n·e_bootstrap with e = n·⌈log n⌉/2. The L0
    // measurement floods a real graph. On a graph with that edge count,
    // the measured units must land within the same order of magnitude
    // (factor 4 covers direction-doubling and flood scheduling).
    let n = 100usize;
    let log_n = (n as f64).log2().ceil() as usize;
    let target_edges = n * log_n / 2;
    let mut rng = DetRng::new(5);
    let p = 2.0 * target_edges as f64 / (n * (n - 1)) as f64;
    let g = gen::erdos_renyi(n, p, &mut rng);
    let mut ledger = Ledger::new();
    let out = discover(&g, &BTreeSet::new(), &mut ledger);
    assert!(out.complete);
    let formula = (n * target_edges) as u64;
    let measured = out.message_units;
    let ratio = measured as f64 / formula as f64;
    assert!(
        (0.25..4.0).contains(&ratio),
        "measured {measured} vs formula {formula} (ratio {ratio:.2})"
    );
}

#[test]
fn ledger_spans_nest_identically_across_layers() {
    // A Join span must contain its randCl spans, which contain their
    // randNum spans — verified through the recording ledger on a live
    // system.
    use now_bft::core::{NowParams, NowSystem};
    let params = NowParams::new(1 << 10, 2, 1.5, 0.25, 0.05).unwrap();
    let mut sys = NowSystem::init_fast(params, 120, 0.1, 11);
    *sys.ledger_mut() = Ledger::recording();
    sys.join(true);
    let records = sys.ledger().records();
    let join_cost = records
        .iter()
        .find(|r| r.kind == CostKind::Join)
        .expect("join recorded")
        .cost;
    let randcl_total: u64 = records
        .iter()
        .filter(|r| r.kind == CostKind::RandCl)
        .map(|r| r.cost.messages)
        .sum();
    let randnum_total: u64 = records
        .iter()
        .filter(|r| r.kind == CostKind::RandNum)
        .map(|r| r.cost.messages)
        .sum();
    assert!(join_cost.messages >= randcl_total, "join ⊇ its walks");
    assert!(randcl_total >= randnum_total / 2, "walks ⊇ most randNums");
}
