//! Workspace bootstrap smoke test (ISSUE 1): the facade re-exports
//! resolve, and a tiny end-to-end init+ops round is bit-deterministic
//! under the seeded RNG.

use now_bft::adversary::RandomChurn;
use now_bft::core::{NowParams, NowSystem, SystemAudit};
use now_bft::sim::{run, RunConfig};

/// Every facade module must resolve to its crate; referencing one item
/// through each path is enough for the compiler to prove the wiring.
#[test]
fn facade_reexports_resolve() {
    let _net: fn(u64) -> now_bft::net::DetRng = now_bft::net::DetRng::new;
    let _graph: fn(usize) -> now_bft::graph::Graph = now_bft::graph::Graph::new;
    let _agreement = now_bft::agreement::quorum::forgery_possible;
    let _over = now_bft::over::OverParams::for_capacity(1 << 10);
    let _core = now_bft::core::NowParams::for_capacity;
    let _adversary = now_bft::adversary::RandomChurn::balanced;
    let _sim = now_bft::sim::RunConfig::for_steps;
    let _apps = now_bft::apps::broadcast;
}

fn one_round(seed: u64) -> (SystemAudit, u64) {
    let params = NowParams::for_capacity(1 << 10).unwrap();
    let mut sys = NowSystem::init_fast(params, 128, 0.15, seed);
    let mut churn = RandomChurn::balanced(0.15);
    let report = run(&mut sys, &mut churn, RunConfig::for_steps(50));
    (report.final_audit, sys.ledger().total().messages)
}

#[test]
fn end_to_end_round_is_deterministic() {
    let (audit_a, cost_a) = one_round(42);
    let (audit_b, cost_b) = one_round(42);
    assert!(audit_a.population > 0);
    assert_eq!(audit_a, audit_b, "same seed must replay bit-identically");
    assert_eq!(cost_a, cost_b, "cost accounting must replay too");

    let (audit_c, _) = one_round(43);
    assert_ne!(
        (audit_a.population, audit_a.worst_byz_fraction),
        (audit_c.population, audit_c.worst_byz_fraction),
        "different seeds should explore different trajectories"
    );
}
