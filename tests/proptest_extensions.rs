//! Property-based invariants for the extension features: parallel
//! batches, exchange caps, the asynchronous net, Ben-Or, the Law–Siu
//! cycles overlay, secure polling, and the SecurityMode threshold
//! lattice.

use now_bft::agreement::{
    check_agreement, check_validity, run_ben_or_with_coin, ByzPlan, CoinMode,
};
use now_bft::apps::poll;
use now_bft::core::{BatchInput, ExecConfig, NowParams, NowSystem, SecurityMode};
use now_bft::net::{AsyncNet, ClusterId, DetRng, Ledger};
use now_bft::over::CyclesOverlay;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn params() -> NowParams {
    NowParams::new(1 << 10, 2, 1.5, 0.25, 0.05).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A batched step must conserve population exactly: admitted joins
    /// minus completed leaves, whatever the batch composition, with
    /// duplicates and floor rejections accounted.
    #[test]
    fn batches_conserve_population(
        seed in any::<u64>(),
        joins in proptest::collection::vec(any::<bool>(), 0..12),
        leave_picks in proptest::collection::vec(any::<u16>(), 0..12),
    ) {
        let mut sys = NowSystem::init_fast(params(), 140, 0.2, seed);
        let nodes = sys.node_ids();
        let leaves: Vec<_> = leave_picks
            .iter()
            .map(|&p| nodes[p as usize % nodes.len()])
            .collect();
        let before = sys.population() as i64;
        let report = sys.step_batch(&BatchInput::from_flags(&joins, &leaves), &ExecConfig::serial());
        let after = sys.population() as i64;
        prop_assert_eq!(
            after,
            before + report.joined.len() as i64 - report.left.len() as i64
        );
        prop_assert_eq!(report.left.len() + report.rejected.len(), leaves.len());
        prop_assert_eq!(report.joined.len(), joins.len());
        prop_assert!(report.rounds_parallel <= report.cost.rounds);
        // The wave schedule covers exactly the admitted operations and
        // partitions the batch's serial cost.
        prop_assert_eq!(
            report.waves.iter().map(|w| w.ops).sum::<usize>(),
            report.left.len() + report.joined.len()
        );
        prop_assert_eq!(
            report.waves.iter().map(|w| w.rounds_total).sum::<u64>(),
            report.cost.rounds
        );
        prop_assert_eq!(
            report.rounds_parallel,
            report.waves.iter().map(|w| w.rounds_max).sum::<u64>()
        );
        prop_assert!(sys.check_consistency().is_ok());
    }

    /// Schedule invariance: for any batch, the conflict-free wave
    /// scheduler and a plain serial replay of the same operations (same
    /// seed) agree on the final population, the admitted node ids, and
    /// the total message cost — parallel scheduling saves rounds, never
    /// changes outcomes.
    #[test]
    fn wave_scheduler_matches_serial_execution(
        seed in any::<u64>(),
        joins in proptest::collection::vec(any::<bool>(), 0..10),
        leave_picks in proptest::collection::vec(any::<u16>(), 0..10),
    ) {
        let mut batched = NowSystem::init_fast(params(), 140, 0.2, seed);
        let mut serial = NowSystem::init_fast(params(), 140, 0.2, seed);
        let nodes = batched.node_ids();
        let leaves: Vec<_> = leave_picks
            .iter()
            .map(|&p| nodes[p as usize % nodes.len()])
            .collect();

        let report = batched.step_batch(&BatchInput::from_flags(&joins, &leaves), &ExecConfig::serial());
        let mut serial_joined = Vec::new();
        let mut serial_left = 0usize;
        for &n in &leaves {
            if serial.leave(n).is_ok() {
                serial_left += 1;
            }
        }
        for &honest in &joins {
            serial_joined.push(serial.join(honest));
        }

        prop_assert_eq!(batched.population(), serial.population());
        prop_assert_eq!(batched.byz_population(), serial.byz_population());
        prop_assert_eq!(report.left.len(), serial_left);
        prop_assert_eq!(report.joined, serial_joined);
        prop_assert_eq!(batched.node_ids(), serial.node_ids());
        prop_assert_eq!(
            batched.ledger().total().messages,
            serial.ledger().total().messages
        );
        prop_assert!(batched.check_consistency().is_ok());
        prop_assert!(serial.check_consistency().is_ok());
    }

    /// Any exchange cap (including 0-equivalent and over-size caps)
    /// keeps the partition a permutation of the population.
    #[test]
    fn capped_exchange_is_still_a_permutation(
        seed in any::<u64>(),
        cap in 0usize..40,
    ) {
        let p = params().with_exchange_cap(Some(cap));
        let mut sys = NowSystem::init_fast(p, 150, 0.25, seed);
        let all_before: BTreeSet<_> = sys.node_ids().into_iter().collect();
        let sizes_before: Vec<usize> = sys.clusters().map(|c| c.size()).collect();
        let target = sys.cluster_ids()[seed as usize % sys.cluster_count()];
        sys.exchange_all(target, seed % 2 == 0);
        let all_after: BTreeSet<_> = sys.node_ids().into_iter().collect();
        let sizes_after: Vec<usize> = sys.clusters().map(|c| c.size()).collect();
        prop_assert_eq!(all_before, all_after);
        prop_assert_eq!(sizes_before, sizes_after);
        prop_assert!(sys.check_consistency().is_ok());
    }

    /// The async net delivers every accepted message exactly once, in
    /// non-decreasing virtual time, within the delay bound.
    #[test]
    fn async_net_delivers_exactly_once(
        seed in any::<u64>(),
        sends in proptest::collection::vec((0usize..6, 0usize..6, any::<u8>()), 1..50),
        max_delay in 1u64..30,
    ) {
        let mut rng = DetRng::new(seed);
        let mut net: AsyncNet<u8> = AsyncNet::new(6, max_delay);
        for &(from, to, payload) in &sends {
            net.send(from, to, payload, &mut rng);
        }
        // All ports alive: every send is accepted (self-sends included).
        let expected = sends.len() as u64;
        prop_assert_eq!(net.messages_sent(), expected);
        let mut last = 0u64;
        let mut delivered = 0u64;
        while let Some((t, _env)) = net.pop() {
            prop_assert!(t >= last, "time went backwards");
            prop_assert!(t <= (sends.len() as u64) * max_delay + max_delay);
            last = t;
            delivered += 1;
        }
        prop_assert_eq!(delivered, expected);
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// Ben-Or satisfies agreement and validity for every input vector,
    /// Byzantine subset within resilience, plan, and coin mode.
    #[test]
    fn ben_or_agreement_and_validity_always(
        seed in any::<u64>(),
        inputs in proptest::collection::vec(0u64..2, 6..12),
        byz_pick in any::<usize>(),
        plan_pick in 0usize..4,
        common in any::<bool>(),
    ) {
        let n = inputs.len();
        let f = (n - 1) / 5;
        let byz: BTreeSet<usize> = if f == 0 {
            BTreeSet::new()
        } else {
            (0..f).map(|i| (byz_pick + i * 3) % n).collect()
        };
        let f = byz.len();
        let plan = match plan_pick {
            0 => ByzPlan::Silent,
            1 => ByzPlan::ConstantValue(0),
            2 => ByzPlan::Equivocate(0, 1),
            _ => ByzPlan::Random,
        };
        let coin = if common {
            CoinMode::Common { seed: seed ^ 0xC0FFEE }
        } else {
            CoinMode::Local
        };
        let mut ledger = Ledger::new();
        let mut rng = DetRng::new(seed);
        let report = run_ben_or_with_coin(
            n, &inputs, &byz, f, plan, coin, 15, 600, &mut ledger, &mut rng,
        );
        prop_assert!(report.all_decided, "stalled: {plan:?} {coin:?}");
        prop_assert!(check_agreement(&report.result));
        prop_assert!(check_validity(&inputs, &byz, &report.result));
    }

    /// The cycles overlay keeps every cycle a closed tour and the union
    /// degree within 2r under arbitrary insert/remove scripts.
    #[test]
    fn cycles_overlay_survives_any_script(
        seed in any::<u64>(),
        r in 1usize..4,
        script in proptest::collection::vec((any::<bool>(), any::<u16>()), 1..60),
    ) {
        let mut rng = DetRng::new(seed);
        let ids: Vec<ClusterId> = (0..10).map(ClusterId::from_raw).collect();
        let mut overlay = CyclesOverlay::init(&ids, r, &mut rng);
        let mut next = 100u64;
        for (insert, pick) in script {
            if insert {
                overlay.insert(ClusterId::from_raw(next), &mut rng);
                next += 1;
            } else if overlay.vertex_count() > 1 {
                let live: Vec<ClusterId> = overlay.vertices().collect();
                overlay.remove(live[pick as usize % live.len()]);
            }
            prop_assert!(overlay.check_invariants().is_ok(),
                         "{:?}", overlay.check_invariants());
            for v in overlay.vertices() {
                prop_assert!(overlay.degree(v) <= 2 * r);
            }
        }
    }

    /// Polls count every ballot exactly once and the adversary's
    /// distortion never exceeds its ballot count — from any root, at
    /// any corruption level, for either bloc direction.
    #[test]
    fn poll_accounting_is_exact(
        seed in any::<u64>(),
        tau in 0.0f64..0.32,
        bloc in any::<bool>(),
        root_pick in any::<usize>(),
    ) {
        let mut sys = NowSystem::init_fast(params(), 160, tau, seed);
        let ids = sys.cluster_ids();
        let root = ids[root_pick % ids.len()];
        let report = poll(&mut sys, root, |n| n.raw() % 3 != 0, bloc);
        prop_assert_eq!(report.yes + report.no, sys.population());
        prop_assert_eq!(
            report.honest_yes + report.honest_no,
            sys.population() - sys.byz_population()
        );
        prop_assert!(report.distortion() <= sys.byz_population());
        prop_assert!(report.complete);
    }

    /// Threshold lattice: plain-mode security implies authenticated-mode
    /// security (1/3 < 1/2), and the invariants are monotone in honesty.
    #[test]
    fn security_mode_lattice(byz in 0usize..60, size in 1usize..60) {
        prop_assume!(byz <= size);
        let honest = size - byz;
        if SecurityMode::Plain.rand_num_secure(byz, size) {
            prop_assert!(SecurityMode::Authenticated.rand_num_secure(byz, size));
        }
        if SecurityMode::Plain.invariant_holds(honest, size) {
            prop_assert!(SecurityMode::Authenticated.invariant_holds(honest, size));
        }
        // Monotonicity: adding an honest member never breaks either.
        for mode in [SecurityMode::Plain, SecurityMode::Authenticated] {
            if mode.invariant_holds(honest, size) {
                prop_assert!(mode.invariant_holds(honest + 1, size + 1));
            }
        }
    }
}
