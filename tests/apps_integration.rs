//! Applications on a *churned* system: §6's services must stay correct
//! after the cluster partition has been reshaped by joins, leaves,
//! splits, and merges.

use now_bft::adversary::RandomChurn;
use now_bft::apps::{aggregate_count, broadcast, cluster_agreement, sample_node};
use now_bft::core::{NowParams, NowSystem};
use now_bft::sim::{run, RunConfig};
use std::collections::BTreeMap;

fn churned_system(seed: u64) -> NowSystem {
    let params = NowParams::new(1 << 10, 3, 1.5, 0.2, 0.05).unwrap();
    let mut sys = NowSystem::init_fast(params, 240, 0.15, seed);
    let mut churn = RandomChurn::balanced(0.15);
    run(&mut sys, &mut churn, RunConfig::for_steps(60));
    sys.check_consistency().unwrap();
    sys
}

#[test]
fn broadcast_remains_complete_after_churn() {
    let mut sys = churned_system(1);
    for origin in sys.cluster_ids() {
        let report = broadcast(&mut sys, origin);
        assert!(report.complete, "broadcast from {origin} incomplete");
        assert_eq!(report.nodes_reached, sys.population());
    }
}

#[test]
fn aggregation_remains_exact_after_churn() {
    let mut sys = churned_system(2);
    let root = sys.cluster_ids()[0];
    let report = aggregate_count(&mut sys, root);
    assert!(report.complete);
    assert_eq!(report.total, sys.population());
}

#[test]
fn sampling_covers_post_churn_population() {
    let mut sys = churned_system(3);
    let origin = sys.cluster_ids()[0];
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..400 {
        let s = sample_node(&mut sys, origin);
        // Every sample must be a live node.
        assert!(sys.node_cluster(s.node).is_ok());
        seen.insert(s.node);
    }
    // A decent share of distinct nodes shows the sampler is not stuck
    // on a few clusters after the reshape.
    assert!(
        seen.len() as u64 > sys.population() / 2,
        "only {} of {} nodes reachable by sampling",
        seen.len(),
        sys.population()
    );
}

#[test]
fn agreement_decides_and_reaches_all_after_churn() {
    let mut sys = churned_system(4);
    let proposals: BTreeMap<_, _> = sys
        .cluster_ids()
        .into_iter()
        .map(|c| (c, c.raw() * 3 + 1))
        .collect();
    let report = cluster_agreement(&mut sys, &proposals).unwrap();
    assert!(report.complete);
    assert!(proposals.values().any(|&v| v == report.decided));
}

#[test]
fn app_costs_scale_with_population_not_population_squared() {
    let mut small = churned_system(5);
    let origin_s = small.cluster_ids()[0];
    let bc_small = broadcast(&mut small, origin_s);

    let params = NowParams::new(1 << 10, 3, 1.5, 0.2, 0.05).unwrap();
    let mut big = NowSystem::init_fast(params, 480, 0.15, 6);
    let origin_b = big.cluster_ids()[0];
    let bc_big = broadcast(&mut big, origin_b);

    let n_ratio = big.population() as f64 / small.population() as f64;
    let cost_ratio = bc_big.messages as f64 / bc_small.messages as f64;
    assert!(
        cost_ratio < n_ratio * n_ratio * 0.75,
        "broadcast scaled quadratically: n ×{n_ratio:.2}, cost ×{cost_ratio:.2}"
    );
}
