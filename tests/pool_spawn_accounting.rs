//! Spawn accounting for the persistent wave-worker pool: a pooled run
//! spawns **O(threads) worker threads total**, however many batches and
//! waves it executes, while the legacy scoped executor provably spawns
//! per wave. The assertions read the process-global spawn counter
//! (`wave_worker_spawn_total`), so this file deliberately contains a
//! **single** test — integration-test binaries run their tests in
//! parallel, and any concurrently spawning test in the same process
//! would race the counter deltas.

use now_bft::core::{
    wave_worker_spawn_total, BatchInput, ExecConfig, JoinSpec, NowParams, NowSystem, WavePool,
};
use now_bft::net::NodeId;

/// Sparse overlay (capacity 16 ⇒ target degree 5) over 64 clusters, so
/// batches schedule genuinely wide waves that engage the workers.
fn sparse_system(seed: u64) -> NowSystem {
    let params = NowParams::for_capacity(16).unwrap();
    let n0 = 64 * params.target_cluster_size();
    NowSystem::init_fast(params, n0, 0.1, seed)
}

fn step_batch(sys: &NowSystem, step: usize) -> (Vec<JoinSpec>, Vec<NodeId>) {
    let joins = vec![JoinSpec::uniform(step % 3 != 0), JoinSpec::uniform(true)];
    let leaves: Vec<NodeId> = sys
        .node_ids()
        .into_iter()
        .step_by(11 + step)
        .take(6)
        .collect();
    (joins, leaves)
}

const STEPS: usize = 10;
const THREADS: usize = 4;

#[test]
fn pool_spawns_o_threads_per_run_while_scoped_spawns_per_wave() {
    // ---- pooled run: exactly THREADS spawns, all at pool creation ----
    let before = wave_worker_spawn_total();
    let pool = WavePool::new(THREADS);
    assert_eq!(
        wave_worker_spawn_total() - before,
        THREADS as u64,
        "a pool spawns its workers eagerly, once"
    );
    assert_eq!(pool.worker_count(), THREADS);

    let mut sys = sparse_system(5);
    let mut pooled_wide_waves: Vec<usize> = Vec::new();
    for step in 0..STEPS {
        let (joins, leaves) = step_batch(&sys, step);
        let report = sys.step_batch(
            &BatchInput::from_specs(&joins, &leaves),
            &ExecConfig::pooled(&pool),
        );
        pooled_wide_waves.extend(report.waves.iter().filter(|w| w.ops >= 2).map(|w| w.ops));
    }
    sys.check_consistency().unwrap();
    assert!(
        pooled_wide_waves.len() >= 2,
        "the workload must dispatch real multi-op waves, got {pooled_wide_waves:?}"
    );
    assert_eq!(
        wave_worker_spawn_total() - before,
        THREADS as u64,
        "the pooled run must not spawn beyond its initial workers: \
         O(threads) per run, not O(waves)"
    );
    drop(pool);

    // A single-worker pool plans inline: zero spawns.
    let before = wave_worker_spawn_total();
    let inline_pool = WavePool::new(1);
    let mut sys = sparse_system(5);
    for step in 0..3 {
        let (joins, leaves) = step_batch(&sys, step);
        sys.step_batch(
            &BatchInput::from_specs(&joins, &leaves),
            &ExecConfig::pooled(&inline_pool),
        );
    }
    assert_eq!(
        wave_worker_spawn_total() - before,
        0,
        "threads=1 must not spawn at all"
    );

    // ---- scoped reference: spawns min(threads, ops) per wide wave ----
    let before = wave_worker_spawn_total();
    let mut sys = sparse_system(5);
    let mut expected_scoped_spawns = 0u64;
    for step in 0..STEPS {
        let (joins, leaves) = step_batch(&sys, step);
        let report = sys.step_batch(
            &BatchInput::from_specs(&joins, &leaves),
            &ExecConfig::scoped(THREADS),
        );
        expected_scoped_spawns += report
            .waves
            .iter()
            .filter(|w| w.ops >= 2)
            .map(|w| w.ops.min(THREADS) as u64)
            .sum::<u64>();
    }
    let scoped_spawns = wave_worker_spawn_total() - before;
    assert_eq!(
        scoped_spawns, expected_scoped_spawns,
        "scoped executor spawns min(threads, ops) fresh workers per wide wave"
    );
    assert!(
        scoped_spawns > THREADS as u64,
        "the workload makes the scoped path spawn more than a whole pooled \
         run ({scoped_spawns} vs {THREADS}) — the overhead the pool removes"
    );
}
