//! Property-based end-to-end invariants: arbitrary operation scripts
//! must never break the partition, the registry, the overlay, or the
//! ledger.

use now_bft::core::{NowParams, NowSystem};
use proptest::prelude::*;

fn params() -> NowParams {
    NowParams::new(1 << 10, 2, 1.5, 0.25, 0.05).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of joins (honest or Byzantine, arbitrary contact
    /// choice) and leaves (arbitrary victim) preserves full structural
    /// consistency and exact population accounting.
    #[test]
    fn arbitrary_churn_scripts_stay_consistent(
        seed in any::<u64>(),
        script in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<u16>()), 1..40),
    ) {
        let mut sys = NowSystem::init_fast(params(), 120, 0.15, seed);
        let mut expected_pop = 120i64;
        let mut expected_byz = sys.byz_population() as i64;
        for (is_join, honest, pick) in script {
            if is_join {
                let ids = sys.cluster_ids();
                let contact = ids[pick as usize % ids.len()];
                sys.join_via(contact, honest);
                expected_pop += 1;
                if !honest {
                    expected_byz += 1;
                }
            } else {
                let nodes = sys.node_ids();
                let victim = nodes[pick as usize % nodes.len()];
                let was_honest = sys.is_honest(victim).unwrap();
                if sys.leave(victim).is_ok() {
                    expected_pop -= 1;
                    if !was_honest {
                        expected_byz -= 1;
                    }
                }
            }
            prop_assert!(sys.check_consistency().is_ok(),
                         "{:?}", sys.check_consistency());
        }
        prop_assert_eq!(sys.population() as i64, expected_pop);
        prop_assert_eq!(sys.byz_population() as i64, expected_byz);
    }

    /// Cluster sizes stay within the split/merge band after every
    /// operation (single remaining cluster exempt from the lower bound).
    #[test]
    fn size_band_holds_under_random_churn(seed in any::<u64>()) {
        let mut sys = NowSystem::init_fast(params(), 150, 0.1, seed);
        let lo = sys.params().min_cluster_size();
        let hi = sys.params().max_cluster_size();
        for i in 0..30u64 {
            if i % 3 == 0 {
                let nodes = sys.node_ids();
                let victim = nodes[(seed as usize + i as usize) % nodes.len()];
                let _ = sys.leave(victim);
            } else {
                sys.join(i % 5 == 0);
            }
            for c in sys.clusters() {
                prop_assert!(c.size() <= hi, "cluster over band: {}", c.size());
                if sys.cluster_count() > 1 {
                    prop_assert!(c.size() >= lo, "cluster under band: {}", c.size());
                }
            }
        }
    }

    /// The exchange primitive is a permutation of the population: sizes
    /// and the node multiset are preserved no matter which cluster is
    /// shuffled, with or without cascade.
    #[test]
    fn exchange_is_population_permutation(seed in any::<u64>(), cascade in any::<bool>(), idx in 0usize..8) {
        let mut sys = NowSystem::init_fast(params(), 160, 0.2, seed);
        let ids = sys.cluster_ids();
        let c = ids[idx % ids.len()];
        let before: std::collections::BTreeSet<_> = sys.node_ids().into_iter().collect();
        let byz_before = sys.byz_population();
        sys.exchange_all(c, cascade);
        let after: std::collections::BTreeSet<_> = sys.node_ids().into_iter().collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(sys.byz_population(), byz_before);
        prop_assert!(sys.check_consistency().is_ok());
    }

    /// The threaded wave executor's headline contract: for any seed and
    /// any batch shape, serial (1 worker) and threaded (2 and 8 worker)
    /// executions are **bit-equal** on population, admitted ids, ledger
    /// totals and per-kind statistics, and the wave schedule — thread
    /// interleaving is unobservable.
    #[test]
    fn threaded_waves_are_bit_deterministic(
        seed in any::<u64>(),
        joins in proptest::collection::vec(any::<bool>(), 0..8),
        leave_picks in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let run = |threads: usize| {
            let mut sys = NowSystem::init_fast(params(), 140, 0.15, seed);
            let nodes = sys.node_ids();
            // Arbitrary victims; duplicates allowed (the engine must
            // reject them identically at every thread count).
            let leaves: Vec<_> = leave_picks
                .iter()
                .map(|&p| nodes[p as usize % nodes.len()])
                .collect();
            let report = sys.step_parallel_threaded(&joins, &leaves, threads);
            sys.check_consistency().expect("post-batch consistency");
            (
                (
                    sys.population(),
                    sys.byz_population(),
                    sys.node_ids(),
                    sys.cluster_ids(),
                    sys.op_counts(),
                ),
                (
                    report.joined.clone(),
                    report.left.clone(),
                    report
                        .rejected
                        .iter()
                        .map(|(n, e)| (*n, format!("{e:?}")))
                        .collect::<Vec<_>>(),
                ),
                (report.cost, report.rounds_parallel, report.waves.clone()),
                (
                    sys.ledger().total(),
                    now_bft::net::CostKind::ALL
                        .iter()
                        .map(|&k| sys.ledger().stats(k))
                        .collect::<Vec<_>>(),
                ),
            )
        };
        let serial = run(1);
        prop_assert_eq!(&serial, &run(2), "threads=1 vs threads=2 diverged");
        prop_assert_eq!(&serial, &run(8), "threads=1 vs threads=8 diverged");
    }

    /// Ledger totals are monotone non-decreasing across operations and
    /// spans always balance at operation boundaries.
    #[test]
    fn ledger_monotone_and_balanced(seed in any::<u64>()) {
        let mut sys = NowSystem::init_fast(params(), 130, 0.1, seed);
        let mut last = sys.ledger().total();
        for i in 0..15u64 {
            if i % 2 == 0 {
                sys.join(false);
            } else {
                let nodes = sys.node_ids();
                let _ = sys.leave(nodes[i as usize % nodes.len()]);
            }
            let now = sys.ledger().total();
            prop_assert!(now.messages >= last.messages);
            prop_assert!(now.rounds >= last.rounds);
            prop_assert!(sys.ledger().is_balanced());
            last = now;
        }
    }
}
