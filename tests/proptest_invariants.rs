//! Property-based end-to-end invariants: arbitrary operation scripts
//! must never break the partition, the registry, the overlay, or the
//! ledger.

use now_bft::core::{NowParams, NowSystem};
use proptest::prelude::*;

fn params() -> NowParams {
    NowParams::new(1 << 10, 2, 1.5, 0.25, 0.05).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of joins (honest or Byzantine, arbitrary contact
    /// choice) and leaves (arbitrary victim) preserves full structural
    /// consistency and exact population accounting.
    #[test]
    fn arbitrary_churn_scripts_stay_consistent(
        seed in any::<u64>(),
        script in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<u16>()), 1..40),
    ) {
        let mut sys = NowSystem::init_fast(params(), 120, 0.15, seed);
        let mut expected_pop = 120i64;
        let mut expected_byz = sys.byz_population() as i64;
        for (is_join, honest, pick) in script {
            if is_join {
                let ids = sys.cluster_ids();
                let contact = ids[pick as usize % ids.len()];
                sys.join_via(contact, honest);
                expected_pop += 1;
                if !honest {
                    expected_byz += 1;
                }
            } else {
                let nodes = sys.node_ids();
                let victim = nodes[pick as usize % nodes.len()];
                let was_honest = sys.is_honest(victim).unwrap();
                if sys.leave(victim).is_ok() {
                    expected_pop -= 1;
                    if !was_honest {
                        expected_byz -= 1;
                    }
                }
            }
            prop_assert!(sys.check_consistency().is_ok(),
                         "{:?}", sys.check_consistency());
        }
        prop_assert_eq!(sys.population() as i64, expected_pop);
        prop_assert_eq!(sys.byz_population() as i64, expected_byz);
    }

    /// Cluster sizes stay within the split/merge band after every
    /// operation (single remaining cluster exempt from the lower bound).
    #[test]
    fn size_band_holds_under_random_churn(seed in any::<u64>()) {
        let mut sys = NowSystem::init_fast(params(), 150, 0.1, seed);
        let lo = sys.params().min_cluster_size();
        let hi = sys.params().max_cluster_size();
        for i in 0..30u64 {
            if i % 3 == 0 {
                let nodes = sys.node_ids();
                let victim = nodes[(seed as usize + i as usize) % nodes.len()];
                let _ = sys.leave(victim);
            } else {
                sys.join(i % 5 == 0);
            }
            for c in sys.clusters() {
                prop_assert!(c.size() <= hi, "cluster over band: {}", c.size());
                if sys.cluster_count() > 1 {
                    prop_assert!(c.size() >= lo, "cluster under band: {}", c.size());
                }
            }
        }
    }

    /// The exchange primitive is a permutation of the population: sizes
    /// and the node multiset are preserved no matter which cluster is
    /// shuffled, with or without cascade.
    #[test]
    fn exchange_is_population_permutation(seed in any::<u64>(), cascade in any::<bool>(), idx in 0usize..8) {
        let mut sys = NowSystem::init_fast(params(), 160, 0.2, seed);
        let ids = sys.cluster_ids();
        let c = ids[idx % ids.len()];
        let before: std::collections::BTreeSet<_> = sys.node_ids().into_iter().collect();
        let byz_before = sys.byz_population();
        sys.exchange_all(c, cascade);
        let after: std::collections::BTreeSet<_> = sys.node_ids().into_iter().collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(sys.byz_population(), byz_before);
        prop_assert!(sys.check_consistency().is_ok());
    }

    /// Ledger totals are monotone non-decreasing across operations and
    /// spans always balance at operation boundaries.
    #[test]
    fn ledger_monotone_and_balanced(seed in any::<u64>()) {
        let mut sys = NowSystem::init_fast(params(), 130, 0.1, seed);
        let mut last = sys.ledger().total();
        for i in 0..15u64 {
            if i % 2 == 0 {
                sys.join(false);
            } else {
                let nodes = sys.node_ids();
                let _ = sys.leave(nodes[i as usize % nodes.len()]);
            }
            let now = sys.ledger().total();
            prop_assert!(now.messages >= last.messages);
            prop_assert!(now.rounds >= last.rounds);
            prop_assert!(sys.ledger().is_balanced());
            last = now;
        }
    }
}
