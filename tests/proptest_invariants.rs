//! Property-based end-to-end invariants: arbitrary operation scripts
//! must never break the partition, the registry, the overlay, or the
//! ledger.

use now_bft::adversary::{
    BatchDriver, BatchForcedLeave, BatchJoinLeave, BatchSplitForcing, ClusterPick,
};
use now_bft::core::{BatchInput, ExecConfig, JoinSpec, NowParams, NowSystem};
use now_bft::net::{DetRng, NodeId};
use proptest::prelude::*;

fn params() -> NowParams {
    NowParams::new(1 << 10, 2, 1.5, 0.25, 0.05).unwrap()
}

/// Builds one of the three batched attack drivers (the ROADMAP's
/// "batched adversarial drivers" gap) from proptest-chosen knobs.
fn attack_driver(kind: usize, pick: usize, width: usize, tau: f64) -> Box<dyn BatchDriver> {
    let pick = [
        ClusterPick::First,
        ClusterPick::Largest,
        ClusterPick::Smallest,
    ][pick % 3];
    match kind % 3 {
        0 => Box::new(BatchJoinLeave::new(width, tau).with_pick(pick)),
        1 => Box::new(BatchForcedLeave::new(width, tau).with_pick(pick)),
        _ => Box::new(BatchSplitForcing::new(width, tau).with_pick(pick)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of joins (honest or Byzantine, arbitrary contact
    /// choice) and leaves (arbitrary victim) preserves full structural
    /// consistency and exact population accounting.
    #[test]
    fn arbitrary_churn_scripts_stay_consistent(
        seed in any::<u64>(),
        script in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<u16>()), 1..40),
    ) {
        let mut sys = NowSystem::init_fast(params(), 120, 0.15, seed);
        let mut expected_pop = 120i64;
        let mut expected_byz = sys.byz_population() as i64;
        for (is_join, honest, pick) in script {
            if is_join {
                let ids = sys.cluster_ids();
                let contact = ids[pick as usize % ids.len()];
                sys.join_via(contact, honest);
                expected_pop += 1;
                if !honest {
                    expected_byz += 1;
                }
            } else {
                let nodes = sys.node_ids();
                let victim = nodes[pick as usize % nodes.len()];
                let was_honest = sys.is_honest(victim).unwrap();
                if sys.leave(victim).is_ok() {
                    expected_pop -= 1;
                    if !was_honest {
                        expected_byz -= 1;
                    }
                }
            }
            prop_assert!(sys.check_consistency().is_ok(),
                         "{:?}", sys.check_consistency());
        }
        prop_assert_eq!(sys.population() as i64, expected_pop);
        prop_assert_eq!(sys.byz_population() as i64, expected_byz);
    }

    /// Cluster sizes stay within the split/merge band after every
    /// operation (single remaining cluster exempt from the lower bound).
    #[test]
    fn size_band_holds_under_random_churn(seed in any::<u64>()) {
        let mut sys = NowSystem::init_fast(params(), 150, 0.1, seed);
        let lo = sys.params().min_cluster_size();
        let hi = sys.params().max_cluster_size();
        for i in 0..30u64 {
            if i % 3 == 0 {
                let nodes = sys.node_ids();
                let victim = nodes[(seed as usize + i as usize) % nodes.len()];
                let _ = sys.leave(victim);
            } else {
                sys.join(i % 5 == 0);
            }
            for c in sys.clusters() {
                prop_assert!(c.size() <= hi, "cluster over band: {}", c.size());
                if sys.cluster_count() > 1 {
                    prop_assert!(c.size() >= lo, "cluster under band: {}", c.size());
                }
            }
        }
    }

    /// The exchange primitive is a permutation of the population: sizes
    /// and the node multiset are preserved no matter which cluster is
    /// shuffled, with or without cascade.
    #[test]
    fn exchange_is_population_permutation(seed in any::<u64>(), cascade in any::<bool>(), idx in 0usize..8) {
        let mut sys = NowSystem::init_fast(params(), 160, 0.2, seed);
        let ids = sys.cluster_ids();
        let c = ids[idx % ids.len()];
        let before: std::collections::BTreeSet<_> = sys.node_ids().into_iter().collect();
        let byz_before = sys.byz_population();
        sys.exchange_all(c, cascade);
        let after: std::collections::BTreeSet<_> = sys.node_ids().into_iter().collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(sys.byz_population(), byz_before);
        prop_assert!(sys.check_consistency().is_ok());
    }

    /// The threaded wave executor's headline contract: for any seed and
    /// any batch shape, serial (1 worker) and threaded (2 and 8 worker)
    /// executions are **bit-equal** on population, admitted ids, ledger
    /// totals and per-kind statistics, and the wave schedule — thread
    /// interleaving is unobservable.
    #[test]
    fn threaded_waves_are_bit_deterministic(
        seed in any::<u64>(),
        joins in proptest::collection::vec(any::<bool>(), 0..8),
        leave_picks in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let run = |threads: usize| {
            let mut sys = NowSystem::init_fast(params(), 140, 0.15, seed);
            let nodes = sys.node_ids();
            // Arbitrary victims; duplicates allowed (the engine must
            // reject them identically at every thread count).
            let leaves: Vec<_> = leave_picks
                .iter()
                .map(|&p| nodes[p as usize % nodes.len()])
                .collect();
            let report = sys.step_batch(
                &BatchInput::from_flags(&joins, &leaves),
                &ExecConfig::threaded(threads),
            );
            sys.check_consistency().expect("post-batch consistency");
            (
                (
                    sys.population(),
                    sys.byz_population(),
                    sys.node_ids(),
                    sys.cluster_ids(),
                    sys.op_counts(),
                ),
                (
                    report.joined.clone(),
                    report.left.clone(),
                    report
                        .rejected
                        .iter()
                        .map(|(n, e)| (*n, format!("{e:?}")))
                        .collect::<Vec<_>>(),
                ),
                (report.cost, report.rounds_parallel, report.waves.clone()),
                (
                    sys.ledger().total(),
                    now_bft::net::CostKind::ALL
                        .iter()
                        .map(|&k| sys.ledger().stats(k))
                        .collect::<Vec<_>>(),
                ),
            )
        };
        let serial = run(1);
        prop_assert_eq!(&serial, &run(2), "threads=1 vs threads=2 diverged");
        prop_assert_eq!(&serial, &run(8), "threads=1 vs threads=8 diverged");
    }

    /// The worker-pool tentpole contract: **pooled ≡ scoped ≡ serial**
    /// on population, admitted ids, ledger totals and per-kind stats,
    /// and the wave schedule — across threads ∈ {1, 2, 4, 8} *and*
    /// across pool reuse: one run-scoped [`now_bft::core::WavePool`]
    /// serves every step of a multi-step run and must be
    /// indistinguishable from per-wave scoped spawning and from plain
    /// sequential planning.
    #[test]
    fn pooled_scoped_serial_agree_across_pool_reuse(
        seed in any::<u64>(),
        joins in proptest::collection::vec(any::<bool>(), 1..6),
        leave_picks in proptest::collection::vec(any::<u16>(), 1..6),
        steps in 2usize..5,
    ) {
        use now_bft::core::WavePool;

        #[derive(Clone, Copy)]
        enum Engine {
            Serial,
            Pooled(usize),
            Scoped(usize),
        }

        let specs: Vec<JoinSpec> = joins.iter().map(|&h| JoinSpec::uniform(h)).collect();
        let run = |engine: Engine| {
            let mut sys = NowSystem::init_fast(params(), 140, 0.15, seed);
            // One pool for the whole run: reuse across steps is part of
            // the contract under test.
            let pool = match engine {
                Engine::Pooled(t) => Some(WavePool::new(t)),
                _ => None,
            };
            let mut per_step = Vec::new();
            for step in 0..steps {
                let nodes = sys.node_ids();
                let leaves: Vec<NodeId> = leave_picks
                    .iter()
                    .map(|&p| nodes[(p as usize + step) % nodes.len()])
                    .collect();
                let input = BatchInput::from_specs(&specs, &leaves);
                let report = match engine {
                    Engine::Serial => sys.step_batch(&input, &ExecConfig::threaded(1)),
                    Engine::Pooled(_) => {
                        sys.step_batch(&input, &ExecConfig::pooled(pool.as_ref().unwrap()))
                    }
                    Engine::Scoped(t) => sys.step_batch(&input, &ExecConfig::scoped(t)),
                };
                per_step.push((
                    report.joined,
                    report.left,
                    report.cost,
                    report.rounds_parallel,
                    report.waves,
                    report.contact_redraws,
                ));
            }
            sys.check_consistency().expect("post-run consistency");
            (
                per_step,
                sys.population(),
                sys.byz_population(),
                sys.node_ids(),
                sys.cluster_ids(),
                sys.ledger().total(),
                now_bft::net::CostKind::ALL
                    .iter()
                    .map(|&k| sys.ledger().stats(k))
                    .collect::<Vec<_>>(),
            )
        };

        let serial = run(Engine::Serial);
        for threads in [1usize, 2, 4, 8] {
            prop_assert_eq!(
                &serial,
                &run(Engine::Pooled(threads)),
                "serial vs pooled({}) diverged",
                threads
            );
            prop_assert_eq!(
                &serial,
                &run(Engine::Scoped(threads)),
                "serial vs scoped({}) diverged",
                threads
            );
        }
    }

    /// The batched attack drivers' engine-agreement contract, for every
    /// driver kind, target policy, width, and seed:
    ///
    /// 1. **serial ≡ batched**: replaying a scheduled run's decided
    ///    batches one operation at a time (`join_via`/`join`/`leave`)
    ///    reproduces the batch execution exactly — population, admitted
    ///    ids, node sets, and total message cost (message costs are
    ///    schedule-invariant).
    /// 2. **threaded(1) ≡ threaded(4)**: the threaded engine is
    ///    bit-identical across thread counts on population, ids, wave
    ///    schedule, and full ledger statistics.
    #[test]
    fn attack_drivers_agree_across_engines(
        seed in any::<u64>(),
        kind in 0usize..3,
        pick in 0usize..3,
        width in 1usize..7,
    ) {
        const STEPS: usize = 5;
        let tau = 0.20;

        // --- scheduled run, recording each decided batch ---
        let mut sys = NowSystem::init_fast(params(), 150, 0.15, seed);
        let mut driver = attack_driver(kind, pick, width, tau);
        let mut rng = DetRng::new(seed ^ 0xA5A5_5A5A);
        let mut script: Vec<(Vec<JoinSpec>, Vec<NodeId>)> = Vec::new();
        let mut batched_joined = Vec::new();
        for _ in 0..STEPS {
            let (joins, leaves) = driver.decide_batch(&sys, &mut rng);
            script.push((joins.clone(), leaves.clone()));
            let report = sys.step_batch(&BatchInput::from_specs(&joins, &leaves), &ExecConfig::serial());
            batched_joined.extend(report.joined);
        }
        sys.check_consistency().expect("post-batch consistency");
        let batched = (
            sys.population(),
            sys.byz_population(),
            sys.node_ids(),
            batched_joined,
            sys.ledger().total().messages,
        );

        // --- serial replay of the same script, one op per time step ---
        let mut serial = NowSystem::init_fast(params(), 150, 0.15, seed);
        let mut serial_joined = Vec::new();
        for (joins, leaves) in &script {
            for &node in leaves {
                let _ = serial.leave(node);
            }
            for spec in joins {
                let id = match spec.contact {
                    Some(c) if serial.cluster(c).is_some() => serial.join_via(c, spec.honest),
                    _ => serial.join(spec.honest),
                };
                serial_joined.push(id);
            }
        }
        serial.check_consistency().expect("post-serial consistency");
        let serial_out = (
            serial.population(),
            serial.byz_population(),
            serial.node_ids(),
            serial_joined,
            serial.ledger().total().messages,
        );
        prop_assert_eq!(&batched, &serial_out, "serial vs batched diverged");

        // --- threaded engine: bit-identical across thread counts ---
        let threaded = |threads: usize| {
            let mut sys = NowSystem::init_fast(params(), 150, 0.15, seed);
            let mut driver = attack_driver(kind, pick, width, tau);
            let mut rng = DetRng::new(seed ^ 0xA5A5_5A5A);
            let mut waves = Vec::new();
            for _ in 0..STEPS {
                let (joins, leaves) = driver.decide_batch(&sys, &mut rng);
                let report =
                    sys.step_batch(&BatchInput::from_specs(&joins, &leaves), &ExecConfig::threaded(threads));
                waves.push(report.waves.clone());
            }
            sys.check_consistency().expect("post-threaded consistency");
            (
                sys.population(),
                sys.byz_population(),
                sys.node_ids(),
                sys.cluster_ids(),
                waves,
                sys.ledger().total(),
                now_bft::net::CostKind::ALL
                    .iter()
                    .map(|&k| sys.ledger().stats(k))
                    .collect::<Vec<_>>(),
            )
        };
        prop_assert_eq!(threaded(1), threaded(4), "threads=1 vs threads=4 diverged");
    }

    /// Ledger totals are monotone non-decreasing across operations and
    /// spans always balance at operation boundaries.
    #[test]
    fn ledger_monotone_and_balanced(seed in any::<u64>()) {
        let mut sys = NowSystem::init_fast(params(), 130, 0.1, seed);
        let mut last = sys.ledger().total();
        for i in 0..15u64 {
            if i % 2 == 0 {
                sys.join(false);
            } else {
                let nodes = sys.node_ids();
                let _ = sys.leave(nodes[i as usize % nodes.len()]);
            }
            let now = sys.ledger().total();
            prop_assert!(now.messages >= last.messages);
            prop_assert!(now.rounds >= last.rounds);
            prop_assert!(sys.ledger().is_balanced());
            last = now;
        }
    }
}

// Satellite contract of the `step_batch` redesign: every deprecated
// batch entry point is a pure delegate of `NowSystem::step_batch` —
// bit-identical report, system state, and ledger totals for arbitrary
// batch shapes and seeds. This is the one file allowed to name the
// deprecated identifiers (lint.toml A001 allow): delete the delegates
// and this proof retires together with that entry.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    #[allow(deprecated)]
    fn legacy_batch_entry_points_equal_step_batch(
        seed in any::<u64>(),
        joins in proptest::collection::vec(any::<bool>(), 0..6),
        leave_picks in proptest::collection::vec(any::<u16>(), 0..6),
    ) {
        use now_bft::core::{BatchReport, WavePool};

        let fingerprint = |sys: &NowSystem, report: &BatchReport| {
            (
                report.joined.clone(),
                report.left.clone(),
                report
                    .rejected
                    .iter()
                    .map(|(n, e)| (*n, format!("{e:?}")))
                    .collect::<Vec<_>>(),
                report.cost,
                report.rounds_parallel,
                report.waves.clone(),
                sys.population(),
                sys.byz_population(),
                sys.node_ids(),
                sys.cluster_ids(),
                sys.ledger().total(),
            )
        };
        let specs: Vec<JoinSpec> = joins.iter().map(|&h| JoinSpec::uniform(h)).collect();
        let setup = || NowSystem::init_fast(params(), 140, 0.15, seed);
        let leaves_for = |sys: &NowSystem| -> Vec<NodeId> {
            let nodes = sys.node_ids();
            leave_picks
                .iter()
                .map(|&p| nodes[p as usize % nodes.len()])
                .collect()
        };
        let run_new = |exec: &ExecConfig<'_>| {
            let mut sys = setup();
            let leaves = leaves_for(&sys);
            let report = sys.step_batch(&BatchInput::from_specs(&specs, &leaves), exec);
            fingerprint(&sys, &report)
        };
        let run_old = |f: &dyn Fn(&mut NowSystem, &[NodeId]) -> BatchReport| {
            let mut sys = setup();
            let leaves = leaves_for(&sys);
            let report = f(&mut sys, &leaves);
            fingerprint(&sys, &report)
        };

        let serial = run_new(&ExecConfig::serial());
        prop_assert_eq!(
            &serial,
            &run_old(&|sys, leaves| sys.step_parallel(&joins, leaves)),
            "step_parallel != step_batch(serial)"
        );
        prop_assert_eq!(
            &serial,
            &run_old(&|sys, leaves| sys.step_parallel_specs(&specs, leaves)),
            "step_parallel_specs != step_batch(serial)"
        );

        let threaded = run_new(&ExecConfig::threaded(3));
        prop_assert_eq!(
            &threaded,
            &run_old(&|sys, leaves| sys.step_parallel_threaded(&joins, leaves, 3)),
            "step_parallel_threaded != step_batch(threaded)"
        );
        prop_assert_eq!(
            &threaded,
            &run_old(&|sys, leaves| sys.step_parallel_threaded_specs(&specs, leaves, 3)),
            "step_parallel_threaded_specs != step_batch(threaded)"
        );

        let pool = WavePool::new(3);
        let pooled = run_new(&ExecConfig::pooled(&pool));
        prop_assert_eq!(
            &pooled,
            &run_old(&|sys, leaves| sys.step_parallel_pooled(&joins, leaves, &pool)),
            "step_parallel_pooled != step_batch(pooled)"
        );
        prop_assert_eq!(
            &pooled,
            &run_old(&|sys, leaves| sys.step_parallel_pooled_specs(&specs, leaves, &pool)),
            "step_parallel_pooled_specs != step_batch(pooled)"
        );

        let scoped = run_new(&ExecConfig::scoped(3));
        prop_assert_eq!(
            &scoped,
            &run_old(&|sys, leaves| sys.step_parallel_scoped_specs(&specs, leaves, 3)),
            "step_parallel_scoped_specs != step_batch(scoped)"
        );

        // The wave engines all land on the same answer (threaded ≡
        // pooled ≡ scoped; the scheduled path draws from the master
        // stream instead of per-op substreams, so it shares outcomes
        // and ids with them but not walk costs — see
        // `pooled_scoped_serial_agree_across_pool_reuse`).
        prop_assert_eq!(&threaded, &pooled);
        prop_assert_eq!(&threaded, &scoped);
    }
}
