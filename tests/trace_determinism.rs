//! Byte-identity contracts of the observability artifacts (the
//! `now-trace` flight recorder + metrics registry):
//!
//! 1. **Engine/worker-count invariance** — the trace JSON, metrics
//!    JSON, and Prometheus text from a run are byte-identical across
//!    the whole wave-engine family: pooled executors of 1, 2, 4, and
//!    8 workers and the legacy scoped executor. Every recording site
//!    sits on the driving-thread path, so the artifacts are a pure
//!    function of `(seed, config)`, never of the worker schedule.
//! 2. **Event-engine invariance** — the same holds when operations
//!    travel through the event-driven network (send/deliver/drop
//!    events included).
//! 3. **Serial self-replay** — the shared-stream serial engine has its
//!    own randomness schedule (documented ≢ wave engines), but replays
//!    itself byte-identically.
//! 4. **No run-environment leakage** — no wall-clock or thread-count
//!    vocabulary ever appears in a deterministic artifact.

use now_bft::core::{EventNetConfig, NowParams, NowSystem, WavePool};
use now_bft::sim::{BatchExec, BatchRandomChurn, BatchRun};
use proptest::prelude::*;

/// Runs a fixed balanced-churn workload with both sinks armed and
/// returns the three observability artifacts.
fn traced_run(exec: BatchExec, threads: usize, seed: u64) -> (String, String, String) {
    let params = NowParams::for_capacity(1 << 10).expect("params");
    let mut sys = NowSystem::init_fast(params, 200, 0.12, seed);
    let mut driver = BatchRandomChurn::balanced(5, 0.12);
    let pool = WavePool::new(threads);
    BatchRun::new()
        .exec(exec)
        .in_pool(&pool)
        .trace(512)
        .metrics()
        .run(&mut sys, &mut driver, 10, seed ^ 0x7A0E);
    sys.check_consistency().expect("post-run consistency");
    (
        sys.flight_recorder().expect("tracing armed").to_json(),
        sys.metrics().expect("metrics armed").to_json(),
        sys.metrics().expect("metrics armed").to_prometheus(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The artifacts are byte-identical across every wave engine and
    /// worker count, for arbitrary seeds.
    #[test]
    fn trace_identical_across_engines(seed in any::<u64>()) {
        let baseline = traced_run(BatchExec::Threaded(1), 1, seed);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(
                &baseline,
                &traced_run(BatchExec::Threaded(threads), threads, seed),
                "pooled executor with {} workers diverged",
                threads
            );
        }
        prop_assert_eq!(
            &baseline,
            &traced_run(BatchExec::ThreadedScoped(2), 2, seed),
            "scoped executor diverged from the pooled baseline"
        );
    }

    /// Worker-count invariance holds through the event-driven network
    /// too, where the trace additionally carries send/deliver/drop
    /// events.
    #[test]
    fn event_traces_are_worker_count_invariant(
        seed in any::<u64>(),
        latency in 1u64..4,
        drop in 0u32..30,
    ) {
        let net = EventNetConfig::ideal()
            .with_latency(latency)
            .with_drop(f64::from(drop) / 100.0);
        let baseline = traced_run(BatchExec::Event(net), 1, seed);
        for threads in [2usize, 4] {
            prop_assert_eq!(
                &baseline,
                &traced_run(BatchExec::Event(net), threads, seed),
                "event engine with {} workers diverged",
                threads
            );
        }
    }

    /// The shared-stream serial engine replays itself byte-identically
    /// (its stream is documented as distinct from the wave engines').
    #[test]
    fn serial_traces_self_replay(seed in any::<u64>()) {
        prop_assert_eq!(
            traced_run(BatchExec::Scheduled, 1, seed),
            traced_run(BatchExec::Scheduled, 1, seed)
        );
    }
}

/// A tiny ring under a real workload: eviction keeps the newest
/// window, sequence numbers stay globally monotone and contiguous.
#[test]
fn ring_eviction_retains_the_newest_window() {
    let params = NowParams::for_capacity(1 << 10).expect("params");
    let mut sys = NowSystem::init_fast(params, 200, 0.12, 7);
    sys.enable_tracing(16);
    let mut driver = BatchRandomChurn::balanced(6, 0.12);
    let pool = WavePool::new(2);
    BatchRun::new()
        .exec(BatchExec::Threaded(2))
        .in_pool(&pool)
        .run(&mut sys, &mut driver, 12, 99);
    let rec = sys.flight_recorder().unwrap();
    assert!(rec.evicted() > 0, "12 churn steps must overflow 16 slots");
    assert_eq!(rec.len(), rec.capacity());
    assert_eq!(rec.recorded(), rec.evicted() + rec.len() as u64);
    let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
    assert_eq!(seqs.first().copied(), Some(rec.evicted()));
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1),
        "retained sequence numbers must be contiguous"
    );
}

/// Determinism surface gate: the artifacts carry no wall-clock or
/// worker-count vocabulary (mirrors CI's `trace-smoke` grep gate).
#[test]
fn artifacts_never_mention_run_environment() {
    let (trace, metrics, prom) = traced_run(BatchExec::Threaded(4), 4, 0xFACE);
    for artifact in [&trace, &metrics, &prom] {
        for banned in ["wall", "nanos", "thread", "Instant"] {
            assert!(
                !artifact.contains(banned),
                "`{banned}` leaked into a deterministic artifact"
            );
        }
    }
    assert!(metrics.contains("now_steps_total"));
    assert!(trace.contains("\"kind\": \"wave\""));
}
